//! Combinational logic locking by XOR/XNOR key-gate insertion
//! (EPIC-style random insertion).

use mlam_boolean::{BitVec, BooleanFunction};
use mlam_netlist::{GateKind, Net, Netlist};
use rand::seq::SliceRandom;
use rand::Rng;

/// A locked netlist: the original circuit with key gates inserted.
///
/// The locked netlist's inputs are the primary inputs followed by the
/// key inputs; with the correct key applied it is functionally
/// equivalent to the original.
#[derive(Clone, Debug)]
pub struct LockedNetlist {
    netlist: Netlist,
    num_primary: usize,
    num_key: usize,
    correct_key: BitVec,
}

impl LockedNetlist {
    /// Assembles a locked netlist from parts (used by the locking
    /// schemes in this crate).
    ///
    /// # Panics
    ///
    /// Panics if the netlist's input count differs from
    /// `num_primary + correct_key.len()`.
    pub(crate) fn from_parts(
        netlist: Netlist,
        num_primary: usize,
        num_key: usize,
        correct_key: BitVec,
    ) -> Self {
        assert_eq!(correct_key.len(), num_key, "key length");
        assert_eq!(
            netlist.num_inputs(),
            num_primary + num_key,
            "input partition"
        );
        LockedNetlist {
            netlist,
            num_primary,
            num_key,
            correct_key,
        }
    }

    /// The locked netlist itself (inputs = primary ++ key).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of primary inputs.
    pub fn num_primary_inputs(&self) -> usize {
        self.num_primary
    }

    /// Number of key bits.
    pub fn num_key_bits(&self) -> usize {
        self.num_key
    }

    /// The correct key (the designer's secret; attacks must not read
    /// it, it exists for validation).
    pub fn correct_key(&self) -> &BitVec {
        &self.correct_key
    }

    /// Simulates the locked circuit under a primary input and a key.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn simulate(&self, primary: &[bool], key: &BitVec) -> Vec<bool> {
        assert_eq!(primary.len(), self.num_primary, "primary input width");
        assert_eq!(key.len(), self.num_key, "key width");
        let mut inputs = primary.to_vec();
        inputs.extend(key.iter());
        self.netlist.simulate(&inputs)
    }

    /// A single-output view of the locked circuit under a fixed key, as
    /// a [`BooleanFunction`] over the primary inputs. This is the
    /// *concept* a PAC attack learns.
    ///
    /// # Panics
    ///
    /// Panics if `output >= num_outputs` or the key width mismatches.
    pub fn keyed_output(&self, output: usize, key: BitVec) -> KeyedOutput<'_> {
        assert!(output < self.netlist.num_outputs(), "output out of range");
        assert_eq!(key.len(), self.num_key, "key width");
        KeyedOutput {
            locked: self,
            output,
            key,
        }
    }

    /// Checks functional equivalence with `original` under `key`,
    /// exhaustively for small inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_primary > 20`; use
    /// [`equivalent_under_key_formal`](Self::equivalent_under_key_formal)
    /// for wider circuits.
    pub fn equivalent_under_key(&self, original: &Netlist, key: &BitVec) -> bool {
        assert!(self.num_primary <= 20, "exhaustive check limit");
        for v in 0..(1u64 << self.num_primary) {
            let bits: Vec<bool> = (0..self.num_primary).map(|i| v >> i & 1 == 1).collect();
            if self.simulate(&bits, key) != original.simulate(&bits) {
                return false;
            }
        }
        true
    }

    /// Formal (BDD-based) functional-equivalence check with `original`
    /// under `key` — no input-width limit beyond BDD tractability.
    pub fn equivalent_under_key_formal(&self, original: &Netlist, key: &BitVec) -> bool {
        use mlam_netlist::bdd::BddManager;
        assert_eq!(original.num_inputs(), self.num_primary, "input width");
        assert_eq!(key.len(), self.num_key, "key width");
        let mut mgr = BddManager::new(self.num_primary);
        let orig = mgr.build_netlist(original);
        let unlocked = self.apply_key(key);
        let ours = mgr.build_netlist(&unlocked);
        orig == ours
    }

    /// Constant-folds the key into the locked netlist, producing a
    /// circuit over the primary inputs only.
    ///
    /// # Panics
    ///
    /// Panics if the key width mismatches.
    pub fn apply_key(&self, key: &BitVec) -> Netlist {
        assert_eq!(key.len(), self.num_key, "key width");
        let mut b = Netlist::builder(self.num_primary, self.netlist.num_outputs());
        // Constants: XOR(i0, i0) = 0, XNOR(i0, i0) = 1.
        let i0 = b.input(0);
        let zero = b.gate(GateKind::Xor, vec![i0, i0]);
        let one = b.gate(GateKind::Xnor, vec![i0, i0]);
        let mut map: Vec<Net> = Vec::with_capacity(self.netlist.num_nets());
        for i in 0..self.num_primary {
            map.push(b.input(i));
        }
        for i in 0..self.num_key {
            map.push(if key.get(i) { one } else { zero });
        }
        for gate in self.netlist.gates() {
            let ins: Vec<Net> = gate.inputs.iter().map(|n| map[n.index()]).collect();
            map.push(b.gate(gate.kind, ins));
        }
        for (oi, net) in self.netlist.outputs().iter().enumerate() {
            b.set_output(oi, map[net.index()]);
        }
        b.build()
    }

    /// Estimates the accuracy of `key` against `original` on `samples`
    /// random inputs (for large circuits where the exhaustive check is
    /// infeasible).
    pub fn key_accuracy<R: Rng + ?Sized>(
        &self,
        original: &Netlist,
        key: &BitVec,
        samples: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(samples > 0);
        let mut agree = 0usize;
        for _ in 0..samples {
            let bits: Vec<bool> = (0..self.num_primary).map(|_| rng.gen()).collect();
            if self.simulate(&bits, key) == original.simulate(&bits) {
                agree += 1;
            }
        }
        agree as f64 / samples as f64
    }
}

/// A locked output under a fixed key, as a Boolean function of the
/// primary inputs.
#[derive(Clone, Debug)]
pub struct KeyedOutput<'a> {
    locked: &'a LockedNetlist,
    output: usize,
    key: BitVec,
}

impl BooleanFunction for KeyedOutput<'_> {
    fn num_inputs(&self) -> usize {
        self.locked.num_primary
    }

    fn eval(&self, x: &BitVec) -> bool {
        let bits = x.to_bools();
        self.locked.simulate(&bits, &self.key)[self.output]
    }
}

/// Locks a netlist by inserting `key_bits` XOR/XNOR key gates at the
/// outputs of randomly chosen gates (EPIC-style random insertion \[3\]).
///
/// For key bit `i` with correct value `0`, an XOR gate is inserted
/// (identity at `k=0`); with correct value `1`, an XNOR gate (identity
/// at `k=1`). The correct key is drawn uniformly at random.
///
/// # Panics
///
/// Panics if `key_bits == 0` or the circuit has fewer gates than
/// `key_bits`.
pub fn lock_xor<R: Rng + ?Sized>(
    original: &Netlist,
    key_bits: usize,
    rng: &mut R,
) -> LockedNetlist {
    assert!(key_bits > 0, "need at least one key bit");
    assert!(
        original.num_gates() >= key_bits,
        "circuit has too few gates to lock"
    );
    let num_primary = original.num_inputs();
    let correct_key = BitVec::random(key_bits, rng);

    // Pick distinct gate positions to lock (by gate index).
    let mut positions: Vec<usize> = (0..original.num_gates()).collect();
    positions.shuffle(rng);
    positions.truncate(key_bits);
    positions.sort_unstable();

    // Rebuild: inputs = primary ++ key. Maintain a map old net -> new net.
    let mut b = Netlist::builder(num_primary + key_bits, original.num_outputs());
    let mut map: Vec<Net> = Vec::with_capacity(original.num_nets());
    for i in 0..num_primary {
        map.push(b.input(i));
    }
    let mut next_lock = 0usize;
    for (gi, gate) in original.gates().iter().enumerate() {
        let inputs: Vec<Net> = gate.inputs.iter().map(|n| map[n.index()]).collect();
        let mut out = b.gate(gate.kind, inputs);
        if next_lock < positions.len() && positions[next_lock] == gi {
            let key_idx = next_lock;
            let key_net = b.input(num_primary + key_idx);
            let kind = if correct_key.get(key_idx) {
                GateKind::Xnor
            } else {
                GateKind::Xor
            };
            out = b.gate(kind, vec![out, key_net]);
            next_lock += 1;
        }
        map.push(out);
    }
    for (oi, net) in original.outputs().iter().enumerate() {
        b.set_output(oi, map[net.index()]);
    }
    LockedNetlist {
        netlist: b.build(),
        num_primary,
        num_key: key_bits,
        correct_key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_netlist::generate::{c17, random_circuit, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_key_restores_functionality() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig = c17();
        let locked = lock_xor(&orig, 4, &mut rng);
        assert_eq!(locked.num_key_bits(), 4);
        assert_eq!(locked.num_primary_inputs(), 5);
        let key = locked.correct_key().clone();
        assert!(locked.equivalent_under_key(&orig, &key));
    }

    #[test]
    fn wrong_keys_usually_break_functionality() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = ripple_adder(3);
        let locked = lock_xor(&orig, 6, &mut rng);
        let correct = locked.correct_key().clone();
        let mut breaking = 0;
        for i in 0..6 {
            let wrong = correct.with_flipped(i);
            if !locked.equivalent_under_key(&orig, &wrong) {
                breaking += 1;
            }
        }
        // XOR key gates are individually corrupting unless masked
        // downstream; most single-bit flips must break the circuit.
        assert!(breaking >= 4, "only {breaking}/6 flips broke the circuit");
    }

    #[test]
    fn key_accuracy_of_correct_key_is_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let orig = random_circuit(10, 60, 2, &mut rng);
        let locked = lock_xor(&orig, 8, &mut rng);
        let key = locked.correct_key().clone();
        assert_eq!(locked.key_accuracy(&orig, &key, 500, &mut rng), 1.0);
    }

    #[test]
    fn keyed_output_is_a_boolean_function() {
        let mut rng = StdRng::seed_from_u64(4);
        let orig = c17();
        let locked = lock_xor(&orig, 3, &mut rng);
        let key = locked.correct_key().clone();
        let f = locked.keyed_output(0, key.clone());
        assert_eq!(f.num_inputs(), 5);
        for v in 0..32u64 {
            let x = BitVec::from_u64(v, 5);
            let expected = orig.simulate(&x.to_bools())[0];
            assert_eq!(f.eval(&x), expected);
        }
    }

    #[test]
    fn locked_netlist_has_more_gates() {
        let mut rng = StdRng::seed_from_u64(5);
        let orig = c17();
        let locked = lock_xor(&orig, 4, &mut rng);
        assert_eq!(locked.netlist().num_gates(), orig.num_gates() + 4);
        assert_eq!(locked.netlist().num_inputs(), orig.num_inputs() + 4);
    }

    #[test]
    #[should_panic(expected = "too few gates")]
    fn overlocking_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        lock_xor(&c17(), 100, &mut rng);
    }
}

#[cfg(test)]
mod formal_tests {
    use super::*;
    use mlam_netlist::generate::{c17, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn apply_key_folds_constants_correctly() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig = c17();
        let locked = lock_xor(&orig, 4, &mut rng);
        let key = locked.correct_key().clone();
        let unlocked = locked.apply_key(&key);
        assert_eq!(unlocked.num_inputs(), 5);
        assert!(unlocked.equivalent_exhaustive(&orig));
    }

    #[test]
    fn formal_check_agrees_with_exhaustive() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = ripple_adder(3);
        let locked = lock_xor(&orig, 6, &mut rng);
        let correct = locked.correct_key().clone();
        assert!(locked.equivalent_under_key_formal(&orig, &correct));
        assert_eq!(
            locked.equivalent_under_key(&orig, &correct),
            locked.equivalent_under_key_formal(&orig, &correct)
        );
        // A wrong key that breaks the exhaustive check also fails formally.
        for i in 0..6 {
            let wrong = correct.with_flipped(i);
            assert_eq!(
                locked.equivalent_under_key(&orig, &wrong),
                locked.equivalent_under_key_formal(&orig, &wrong),
                "bit {i}"
            );
        }
    }

    #[test]
    fn formal_check_scales_past_the_exhaustive_limit() {
        // 24 primary inputs: exhaustive is infeasible, BDD is instant.
        let mut rng = StdRng::seed_from_u64(3);
        let orig = ripple_adder(12);
        let locked = lock_xor(&orig, 16, &mut rng);
        let key = locked.correct_key().clone();
        assert!(locked.equivalent_under_key_formal(&orig, &key));
        let wrong = key.with_flipped(0);
        // A flipped key bit is formally detected (XOR insertion is
        // never masked in an adder's carry chain).
        assert!(!locked.equivalent_under_key_formal(&orig, &wrong));
    }
}
