//! Sequential logic locking: HARPOON-style FSM obfuscation and its
//! L*-based attack (paper, Section V-B).
//!
//! A [`Fsm`] is a Moore machine with a one-bit output. Obfuscation
//! ([`ObfuscatedFsm`]) prepends a chain of obfuscation-mode states: the
//! device only enters its functional mode after receiving the secret
//! unlock sequence; any wrong symbol resets the chain. In obfuscation
//! mode the output is a constant (garbage).
//!
//! The attack treats the obfuscated machine as a black-box DFA (output
//! bit = acceptance), learns it with Angluin's L*
//! ([`lstar_attack`]) and recovers the unlock sequence by searching the
//! learned model for the shortest word whose residual behaviour equals
//! the functional mode ([`recover_unlock_sequence`]).

use mlam_learn::automata::Dfa;
use mlam_learn::lstar::{lstar_learn, DfaTeacher, ExactDfaTeacher, LstarOutcome};
use rand::Rng;
use std::collections::VecDeque;

/// A Moore machine with a single-bit output per state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fsm {
    alphabet: usize,
    /// `transitions[state][symbol]`.
    transitions: Vec<Vec<usize>>,
    /// Output bit per state.
    outputs: Vec<bool>,
}

impl Fsm {
    /// Creates an FSM; state 0 is initial.
    ///
    /// # Panics
    ///
    /// Panics on table shape violations (same rules as [`Dfa::new`]).
    pub fn new(alphabet: usize, transitions: Vec<Vec<usize>>, outputs: Vec<bool>) -> Self {
        // Delegate validation to the DFA constructor.
        let _ = Dfa::new(alphabet, transitions.clone(), outputs.clone());
        Fsm {
            alphabet,
            transitions,
            outputs,
        }
    }

    /// Generates a random connected FSM with `states` states.
    ///
    /// # Panics
    ///
    /// Panics if `states == 0` or `alphabet == 0`.
    pub fn random<R: Rng + ?Sized>(states: usize, alphabet: usize, rng: &mut R) -> Self {
        assert!(states > 0 && alphabet > 0);
        let mut transitions = vec![vec![0usize; alphabet]; states];
        // Spanning chain for connectivity, then random edges.
        for (s, row) in transitions.iter_mut().enumerate() {
            for (a, t) in row.iter_mut().enumerate() {
                *t = if a == 0 && s + 1 < states {
                    s + 1
                } else {
                    rng.gen_range(0..states)
                };
            }
        }
        let outputs = (0..states).map(|_| rng.gen()).collect();
        Fsm {
            alphabet,
            transitions,
            outputs,
        }
    }

    /// Alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet
    }

    /// State count.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Runs the machine from the initial state, returning the final
    /// state's output bit.
    pub fn output(&self, word: &[usize]) -> bool {
        let mut s = 0usize;
        for &sym in word {
            assert!(sym < self.alphabet, "symbol outside alphabet");
            s = self.transitions[s][sym];
        }
        self.outputs[s]
    }

    /// The equivalent DFA view (acceptance = output bit).
    pub fn to_dfa(&self) -> Dfa {
        Dfa::new(
            self.alphabet,
            self.transitions.clone(),
            self.outputs.clone(),
        )
    }
}

/// A HARPOON-style obfuscated FSM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObfuscatedFsm {
    functional: Fsm,
    unlock_sequence: Vec<usize>,
    /// The combined machine: obfuscation chain followed by the
    /// functional machine.
    combined: Fsm,
}

impl ObfuscatedFsm {
    /// Obfuscates `functional` behind `unlock_sequence` (non-empty, all
    /// symbols within the alphabet).
    ///
    /// Obfuscation-mode semantics: the machine starts in chain state 0;
    /// symbol `unlock_sequence[i]` advances the chain, anything else
    /// resets it to chain state 0 (or to chain state 1 if the wrong
    /// symbol happens to equal the first unlock symbol). Output in the
    /// chain is constant `false`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or contains out-of-alphabet
    /// symbols.
    pub fn new(functional: Fsm, unlock_sequence: Vec<usize>) -> Self {
        assert!(
            !unlock_sequence.is_empty(),
            "unlock sequence must be non-empty"
        );
        let k = functional.alphabet_size();
        assert!(
            unlock_sequence.iter().all(|&s| s < k),
            "unlock symbols must be within the alphabet"
        );
        let chain_len = unlock_sequence.len();
        let offset = chain_len; // functional state s -> combined state offset + s
        let num_states = chain_len + functional.num_states();
        let mut transitions = vec![vec![0usize; k]; num_states];
        let mut outputs = vec![false; num_states];

        for (i, row) in transitions.iter_mut().enumerate().take(chain_len) {
            for (sym, t) in row.iter_mut().enumerate() {
                if sym == unlock_sequence[i] {
                    *t = if i + 1 == chain_len { offset } else { i + 1 };
                } else {
                    // Reset, crediting a restart when the wrong symbol
                    // equals the first unlock symbol.
                    *t = if sym == unlock_sequence[0] && chain_len > 1 {
                        1
                    } else {
                        0
                    };
                }
            }
        }
        for s in 0..functional.num_states() {
            #[allow(clippy::needless_range_loop)]
            for sym in 0..k {
                transitions[offset + s][sym] = offset + functional.transitions[s][sym];
            }
            outputs[offset + s] = functional.outputs[s];
        }
        let combined = Fsm::new(k, transitions, outputs);
        ObfuscatedFsm {
            functional,
            unlock_sequence,
            combined,
        }
    }

    /// The functional (secret) machine.
    pub fn functional(&self) -> &Fsm {
        &self.functional
    }

    /// The secret unlock sequence (for validation only).
    pub fn unlock_sequence(&self) -> &[usize] {
        &self.unlock_sequence
    }

    /// The combined machine the attacker interacts with.
    pub fn combined(&self) -> &Fsm {
        &self.combined
    }
}

/// Result of the L* attack on an obfuscated FSM.
#[derive(Clone, Debug)]
pub struct SequentialAttackResult {
    /// The L* run details.
    pub lstar: LstarOutcome,
    /// Membership queries spent.
    pub membership_queries: usize,
    /// The recovered unlock sequence, if one was found.
    pub unlock_sequence: Option<Vec<usize>>,
}

/// Learns the obfuscated machine with L* and recovers an unlock
/// sequence from the learned model.
///
/// The teacher answers membership queries by *running the device*
/// (black-box access) and equivalence queries exactly — standing in
/// for the scan-chain/bounded-model-check verification an attacker with
/// netlist access performs. For a pure query-based variant, swap the
/// teacher for a sampling one.
pub fn lstar_attack(target: &ObfuscatedFsm) -> SequentialAttackResult {
    let mut teacher = ExactDfaTeacher::new(target.combined().to_dfa());
    let lstar = lstar_learn(&mut teacher, 10_000);
    let membership_queries = teacher.membership_queries;
    let unlock_sequence = recover_unlock_sequence(&lstar.dfa, &target.functional().to_dfa());
    SequentialAttackResult {
        lstar,
        membership_queries,
        unlock_sequence,
    }
}

/// Searches `learned` (BFS, shortest first) for a word `w` such that
/// the residual machine after `w` is equivalent to `functional` from
/// its initial state. Returns the shortest such word.
pub fn recover_unlock_sequence(learned: &Dfa, functional: &Dfa) -> Option<Vec<usize>> {
    assert_eq!(learned.alphabet_size(), functional.alphabet_size());
    let k = learned.alphabet_size();
    let mut seen = vec![false; learned.num_states()];
    let mut queue: VecDeque<(usize, Vec<usize>)> = VecDeque::new();
    queue.push_back((0, Vec::new()));
    seen[0] = true;
    while let Some((state, word)) = queue.pop_front() {
        if states_equivalent(learned, state, functional, 0) {
            return Some(word);
        }
        for sym in 0..k {
            let next = learned.transitions()[state][sym];
            if !seen[next] {
                seen[next] = true;
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((next, w));
            }
        }
    }
    None
}

/// Checks whether `a` started at `sa` and `b` started at `sb` accept
/// the same language (BFS over the product).
fn states_equivalent(a: &Dfa, sa: usize, b: &Dfa, sb: usize) -> bool {
    let k = a.alphabet_size();
    let mut seen = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back((sa, sb));
    seen.insert((sa, sb));
    while let Some((x, y)) = queue.pop_front() {
        if a.is_accepting(x) != b.is_accepting(y) {
            return false;
        }
        for sym in 0..k {
            let nx = a.transitions()[x][sym];
            let ny = b.transitions()[y][sym];
            if seen.insert((nx, ny)) {
                queue.push_back((nx, ny));
            }
        }
    }
    true
}

/// A sampling teacher: equivalence is simulated with random words, as
/// Angluin's conversion prescribes — the weakest realistic access.
#[derive(Debug)]
pub struct SamplingDfaTeacher<'a, R: Rng> {
    target: Dfa,
    rng: &'a mut R,
    /// Words per simulated equivalence query.
    pub budget: usize,
    /// Maximum sampled word length.
    pub max_len: usize,
    /// Membership queries answered.
    pub membership_queries: usize,
}

impl<'a, R: Rng> SamplingDfaTeacher<'a, R> {
    /// Creates a sampling teacher over `target`.
    pub fn new(target: Dfa, budget: usize, max_len: usize, rng: &'a mut R) -> Self {
        SamplingDfaTeacher {
            target,
            rng,
            budget,
            max_len,
            membership_queries: 0,
        }
    }
}

impl<R: Rng> DfaTeacher for SamplingDfaTeacher<'_, R> {
    fn alphabet_size(&self) -> usize {
        self.target.alphabet_size()
    }

    fn member(&mut self, word: &[usize]) -> bool {
        self.membership_queries += 1;
        self.target.accepts(word)
    }

    fn equivalent(&mut self, hypothesis: &Dfa) -> Option<Vec<usize>> {
        let k = self.target.alphabet_size();
        for _ in 0..self.budget {
            let len = self.rng.gen_range(0..=self.max_len);
            let word: Vec<usize> = (0..len).map(|_| self.rng.gen_range(0..k)).collect();
            if self.target.accepts(&word) != hypothesis.accepts(&word) {
                return Some(word);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle_fsm() -> Fsm {
        // Two states toggled by symbol 1; output = state bit.
        Fsm::new(2, vec![vec![0, 1], vec![1, 0]], vec![false, true])
    }

    #[test]
    fn obfuscated_machine_requires_unlock() {
        let obf = ObfuscatedFsm::new(toggle_fsm(), vec![1, 0, 1]);
        let m = obf.combined();
        // Before unlocking, output stays false.
        assert!(!m.output(&[]));
        assert!(!m.output(&[0, 0, 0]));
        assert!(!m.output(&[1, 0])); // partial unlock
                                     // After the unlock sequence the machine behaves functionally:
                                     // unlock [1,0,1] then toggle once -> state 1 -> output true.
        assert!(m.output(&[1, 0, 1, 1]));
        assert!(!m.output(&[1, 0, 1, 1, 1]));
    }

    #[test]
    fn wrong_symbol_resets_the_chain() {
        let obf = ObfuscatedFsm::new(toggle_fsm(), vec![1, 0]);
        let m = obf.combined();
        // 1 (advance), 1 (wrong, but equals first symbol -> re-credit).
        // then 0 completes the unlock.
        assert!(m.output(&[1, 1, 0, 1]));
        // Entirely wrong prefix keeps it locked.
        assert!(!m.output(&[0, 0, 0, 0, 1]));
    }

    #[test]
    fn lstar_attack_recovers_unlock_sequence() {
        let obf = ObfuscatedFsm::new(toggle_fsm(), vec![1, 0, 1]);
        let result = lstar_attack(&obf);
        let seq = result.unlock_sequence.expect("sequence found");
        // The recovered word must actually unlock the device: running it
        // then behaving functionally.
        let m = obf.combined();
        let mut word = seq.clone();
        word.push(1); // toggle once -> output true iff unlocked
        assert!(m.output(&word), "recovered sequence {seq:?} fails");
        assert_eq!(seq.len(), 3, "shortest unlock has the secret's length");
    }

    #[test]
    fn lstar_attack_on_random_fsms() {
        let mut rng = StdRng::seed_from_u64(5);
        for states in [3usize, 5, 8] {
            let fsm = Fsm::random(states, 2, &mut rng);
            let seq: Vec<usize> = (0..4).map(|_| rng.gen_range(0..2)).collect();
            let obf = ObfuscatedFsm::new(fsm, seq);
            let result = lstar_attack(&obf);
            // The learned machine is exactly equivalent.
            assert_eq!(
                result
                    .lstar
                    .dfa
                    .shortest_disagreement(&obf.combined().to_dfa()),
                None,
                "states={states}"
            );
            // An unlock word exists in the learned model unless the
            // functional machine is degenerate (constant output),
            // in which case unlocking is undetectable.
            if result.unlock_sequence.is_none() {
                let d = obf.functional().to_dfa().minimized();
                assert_eq!(d.num_states(), 1, "only degenerate FSMs may fail");
            }
        }
    }

    #[test]
    fn query_cost_scales_polynomially() {
        let mut rng = StdRng::seed_from_u64(6);
        let fsm_small = Fsm::random(3, 2, &mut rng);
        let fsm_large = Fsm::random(12, 2, &mut rng);
        let obf_small = ObfuscatedFsm::new(fsm_small, vec![0, 1]);
        let obf_large = ObfuscatedFsm::new(fsm_large, vec![0, 1]);
        let r_small = lstar_attack(&obf_small);
        let r_large = lstar_attack(&obf_large);
        assert!(r_large.membership_queries < 100_000);
        assert!(r_small.membership_queries <= r_large.membership_queries * 2);
    }

    #[test]
    fn sampling_teacher_learns_small_machine() {
        let mut rng = StdRng::seed_from_u64(7);
        let target = toggle_fsm().to_dfa();
        let mut teacher = SamplingDfaTeacher::new(target.clone(), 500, 12, &mut rng);
        let out = lstar_learn(&mut teacher, 200);
        assert_eq!(out.dfa.shortest_disagreement(&target), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_unlock_sequence_panics() {
        ObfuscatedFsm::new(toggle_fsm(), vec![]);
    }
}
