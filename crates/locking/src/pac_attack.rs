//! The pure random-example (uniform PAC) attack on logic locking.
//!
//! Instead of *choosing* inputs (membership queries / DIPs), the
//! attacker only observes uniformly random input/output pairs — the
//! weakest access model of Section IV. Learning proceeds by version-
//! space sampling: accumulate I/O constraints, ask the SAT solver for
//! *any* consistent key, and stop when a simulated equivalence query
//! (held-out random examples) accepts. By the standard Occam/version-
//! space argument this is a uniform-distribution PAC learner for the
//! keyed concept class.
//!
//! Comparing its query count with the SAT attack's DIP count on the
//! same instance quantifies the paper's access-model axis.

use crate::combinational::LockedNetlist;
use crate::sat_attack::{add_io_constraint, encode_copy};
use mlam_boolean::BitVec;
use mlam_netlist::Netlist;
use mlam_sat::{SatResult, Solver};
use rand::Rng;

/// Configuration of the PAC (random-example) attack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacAttackConfig {
    /// Examples added per round before re-solving.
    pub batch_size: usize,
    /// Held-out examples per equivalence simulation.
    pub equivalence_budget: usize,
    /// Target accuracy (1 − ε).
    pub target_accuracy: f64,
    /// Hard cap on total examples.
    pub max_examples: usize,
}

impl Default for PacAttackConfig {
    fn default() -> Self {
        PacAttackConfig {
            batch_size: 16,
            equivalence_budget: 200,
            target_accuracy: 0.99,
            max_examples: 20_000,
        }
    }
}

/// Result of the PAC attack.
#[derive(Clone, Debug)]
pub struct PacAttackResult {
    /// The returned key.
    pub key: BitVec,
    /// Random examples consumed (training constraints).
    pub examples_used: usize,
    /// Whether the equivalence simulation accepted within the budget.
    pub accepted: bool,
    /// Accuracy of the returned key on fresh random inputs.
    pub estimated_accuracy: f64,
}

/// Runs the random-example attack.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn pac_attack<R: Rng + ?Sized>(
    locked: &LockedNetlist,
    oracle: &Netlist,
    config: PacAttackConfig,
    rng: &mut R,
) -> PacAttackResult {
    assert_eq!(oracle.num_inputs(), locked.num_primary_inputs());
    assert_eq!(oracle.num_outputs(), locked.netlist().num_outputs());

    let mut keysolver = Solver::new();
    let (_i, keyvars, _o) = encode_copy(locked, &mut keysolver);
    let mut examples_used = 0usize;
    let mut accepted = false;
    let mut key = BitVec::zeros(locked.num_key_bits());

    while examples_used < config.max_examples {
        // Add a batch of random observations as constraints.
        for _ in 0..config.batch_size {
            let x: Vec<bool> = (0..locked.num_primary_inputs())
                .map(|_| rng.gen())
                .collect();
            let response = oracle.simulate(&x);
            add_io_constraint(locked, &mut keysolver, &keyvars, &x, &response);
            examples_used += 1;
        }
        // Any consistent key.
        key = match keysolver.solve() {
            SatResult::Sat(model) => {
                let mut k = BitVec::zeros(locked.num_key_bits());
                for (i, v) in keyvars.iter().enumerate() {
                    k.set(i, model.value(*v));
                }
                k
            }
            SatResult::Unsat => unreachable!("correct key always consistent"),
        };
        // Simulated equivalence query.
        let mut disagreed = false;
        for _ in 0..config.equivalence_budget {
            let x: Vec<bool> = (0..locked.num_primary_inputs())
                .map(|_| rng.gen())
                .collect();
            if locked.simulate(&x, &key) != oracle.simulate(&x) {
                disagreed = true;
                let response = oracle.simulate(&x);
                add_io_constraint(locked, &mut keysolver, &keyvars, &x, &response);
                examples_used += 1;
                break;
            }
        }
        if !disagreed {
            accepted = true;
            break;
        }
    }

    let estimated_accuracy = locked.key_accuracy(oracle, &key, 2000, rng);
    PacAttackResult {
        key,
        examples_used,
        accepted,
        estimated_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinational::lock_xor;
    use crate::sat_attack::{sat_attack, SatAttackConfig};
    use mlam_netlist::generate::{c17, random_circuit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_c17_key_from_random_examples() {
        let mut rng = StdRng::seed_from_u64(1);
        let oracle = c17();
        let locked = lock_xor(&oracle, 4, &mut rng);
        let result = pac_attack(&locked, &oracle, PacAttackConfig::default(), &mut rng);
        assert!(result.accepted);
        assert!(
            result.estimated_accuracy > 0.97,
            "accuracy {}",
            result.estimated_accuracy
        );
    }

    #[test]
    fn random_circuit_reaches_target_accuracy() {
        let mut rng = StdRng::seed_from_u64(2);
        let oracle = random_circuit(9, 40, 2, &mut rng);
        let locked = lock_xor(&oracle, 8, &mut rng);
        let result = pac_attack(&locked, &oracle, PacAttackConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.95,
            "accuracy {}",
            result.estimated_accuracy
        );
    }

    #[test]
    fn random_examples_cost_at_least_as_much_as_dips() {
        // The access-model hierarchy in numbers: on the same instance,
        // the chosen-input SAT attack uses no more oracle interactions
        // than the random-example learner.
        let mut rng = StdRng::seed_from_u64(3);
        let oracle = c17();
        let locked = lock_xor(&oracle, 5, &mut rng);
        let sat = sat_attack(&locked, &oracle, SatAttackConfig::default());
        let pac = pac_attack(&locked, &oracle, PacAttackConfig::default(), &mut rng);
        assert!(
            sat.iterations <= pac.examples_used,
            "DIPs {} vs random examples {}",
            sat.iterations,
            pac.examples_used
        );
    }
}
