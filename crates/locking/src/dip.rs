//! The persistent miter solver behind the SAT and AppSAT attacks.
//!
//! The seed implementation held *two* solvers (a miter and a separate
//! key-consistency instance) and paid for three fresh circuit copies
//! per DIP, with every solve starting the search from scratch. The
//! incremental architecture here keeps **one** [`Solver`] alive for
//! the whole attack:
//!
//! - the miter (two circuit copies with shared inputs, independent key
//!   vectors) is encoded once; the "some output differs" clause is
//!   gated by a selector literal, so the same instance answers both
//!   questions the attack asks —
//!   [`find_dip`](DipSolver::find_dip) solves assuming the selector
//!   (differ-mode), [`extract_key`](DipSolver::extract_key) solves
//!   assuming its negation (consistency-mode, the differs clause
//!   trivially satisfied). The separate key solver is gone, and so is
//!   its per-DIP circuit copy;
//! - each DIP adds two *pinned* circuit copies (one per key vector)
//!   whose primary inputs and outputs are fixed by unit clauses added
//!   **before** the gate clauses, so the solver's root-level
//!   simplification constant-folds most of the copy away on arrival;
//! - learnt clauses, VSIDS activities and saved phases survive across
//!   all of these calls (`mlam-sat`'s incremental contract), so every
//!   DIP iteration starts from everything the previous ones proved.
//!
//! Determinism: the solver is single-threaded and
//! assumption-deterministic, so the DIP sequence, the recovered key
//! and every counter are a pure function of the locked netlist — at
//! any `MLAM_THREADS` setting.

use crate::combinational::LockedNetlist;
use mlam_boolean::BitVec;
use mlam_netlist::{cnf::tseitin_encode, Cnf};
use mlam_sat::{Lit, SatResult, Solver, SolverStats, Var};

/// One persistent solver instance driving an oracle-guided attack.
///
/// The DIP loop is three calls in a cycle:
/// [`find_dip`](DipSolver::find_dip) →
/// oracle query (the caller's business) →
/// [`constrain`](DipSolver::constrain); when `find_dip` returns
/// `None` the accumulated constraints admit only correct keys and
/// [`extract_key`](DipSolver::extract_key) finishes the attack.
#[derive(Debug)]
pub struct DipSolver<'a> {
    locked: &'a LockedNetlist,
    solver: Solver,
    /// Shared primary inputs of the two miter copies.
    inputs: Vec<Var>,
    /// Key vector of miter copy A (also the one models are read from).
    key_a: Vec<Var>,
    /// Key vector of miter copy B.
    key_b: Vec<Var>,
    /// Assuming this literal activates the "some output differs"
    /// clause; assuming its negation neutralizes it.
    differ: Lit,
    /// DIP constraints added so far.
    dips: usize,
}

impl<'a> DipSolver<'a> {
    /// Encodes the miter for `locked` into a fresh persistent solver.
    pub fn new(locked: &'a LockedNetlist) -> DipSolver<'a> {
        let mut solver = Solver::new();
        let (in_a, key_a, out_a) = encode_free_copy(locked, &mut solver);
        let (in_b, key_b, out_b) = encode_free_copy(locked, &mut solver);
        for (a, b) in in_a.iter().zip(&in_b) {
            solver.add_clause(&[Lit::pos(*a), Lit::neg(*b)]);
            solver.add_clause(&[Lit::neg(*a), Lit::pos(*b)]);
        }
        // Some output differs — gated: (d₁ ∨ … ∨ dₙ ∨ ¬sel).
        let sel = solver.new_var();
        let mut diff_clause = Vec::new();
        for (a, b) in out_a.iter().zip(&out_b) {
            let d = solver.new_var();
            // d <-> a XOR b
            solver.add_clause(&[Lit::neg(d), Lit::pos(*a), Lit::pos(*b)]);
            solver.add_clause(&[Lit::neg(d), Lit::neg(*a), Lit::neg(*b)]);
            solver.add_clause(&[Lit::pos(d), Lit::neg(*a), Lit::pos(*b)]);
            solver.add_clause(&[Lit::pos(d), Lit::pos(*a), Lit::neg(*b)]);
            diff_clause.push(Lit::pos(d));
        }
        diff_clause.push(Lit::neg(sel));
        solver.add_clause(&diff_clause);
        DipSolver {
            locked,
            solver,
            inputs: in_a,
            key_a,
            key_b,
            differ: Lit::pos(sel),
            dips: 0,
        }
    }

    /// Searches for a distinguishing input pattern: an input on which
    /// two keys consistent with every constraint so far disagree.
    /// `None` means the key space is fully pruned — every remaining
    /// key is functionally correct.
    pub fn find_dip(&mut self) -> Option<Vec<bool>> {
        match self.solver.solve_assuming(&[self.differ]) {
            SatResult::Sat(model) => Some(self.inputs.iter().map(|v| model.value(*v)).collect()),
            SatResult::Unsat => None,
        }
    }

    /// Adds the oracle's verdict on `dip` as a permanent constraint:
    /// both key vectors must reproduce `response` on `dip`. Costs two
    /// pinned circuit copies (heavily simplified on arrival — see the
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics if `dip`/`response` widths disagree with the netlist.
    pub fn constrain(&mut self, dip: &[bool], response: &[bool]) {
        assert_eq!(dip.len(), self.locked.num_primary_inputs(), "dip width");
        assert_eq!(
            response.len(),
            self.locked.netlist().num_outputs(),
            "response width"
        );
        let key_a = self.key_a.clone();
        let key_b = self.key_b.clone();
        encode_pinned_copy(self.locked, &mut self.solver, &key_a, dip, response);
        encode_pinned_copy(self.locked, &mut self.solver, &key_b, dip, response);
        self.dips += 1;
    }

    /// Extracts a key consistent with every constraint added so far
    /// (the differs clause is disabled for this call). After
    /// [`find_dip`](DipSolver::find_dip) has returned `None`, the key
    /// is exact.
    ///
    /// # Panics
    ///
    /// Panics if no key is consistent — impossible when the responses
    /// came from a real oracle (the true key always satisfies them).
    pub fn extract_key(&mut self) -> BitVec {
        match self.solver.solve_assuming(&[self.differ.negate()]) {
            SatResult::Sat(model) => {
                let mut k = BitVec::zeros(self.locked.num_key_bits());
                for (i, v) in self.key_a.iter().enumerate() {
                    k.set(i, model.value(*v));
                }
                k
            }
            SatResult::Unsat => unreachable!("the correct key is always consistent"),
        }
    }

    /// Whether `key` is consistent with every constraint added so far
    /// (an assumption probe; nothing is added to the instance). Used
    /// by the regression tests to prove that learnt-clause persistence
    /// never changes the consistent-key set.
    pub fn is_key_consistent(&mut self, key: &BitVec) -> bool {
        let mut assumptions = vec![self.differ.negate()];
        for (i, v) in self.key_a.iter().enumerate() {
            assumptions.push(Lit::new(*v, !key.get(i)));
        }
        self.solver.solve_assuming(&assumptions).is_sat()
    }

    /// Extracts the **lexicographically smallest** consistent key by
    /// fixing one bit at a time with assumption probes (`0` wins when
    /// both polarities are consistent).
    ///
    /// Once [`find_dip`](DipSolver::find_dip) has returned `None`, the
    /// consistent-key set equals the set of functionally correct keys —
    /// a property of the constraints alone, independent of which DIP
    /// sequence produced them and of anything the solver learnt along
    /// the way. The canonical key is therefore identical across solver
    /// strategies (the `sat_incremental` bench leans on this to compare
    /// incremental and one-shot runs key-for-key).
    pub fn extract_canonical_key(&mut self) -> BitVec {
        let nk = self.locked.num_key_bits();
        let mut fixed: Vec<Lit> = vec![self.differ.negate()];
        let mut k = BitVec::zeros(nk);
        for i in 0..nk {
            fixed.push(Lit::neg(self.key_a[i]));
            if !self.solver.solve_assuming(&fixed).is_sat() {
                *fixed.last_mut().expect("just pushed") = Lit::pos(self.key_a[i]);
                k.set(i, true);
            }
        }
        k
    }

    /// DIP constraints added so far.
    pub fn num_dips(&self) -> usize {
        self.dips
    }

    /// The underlying solver's statistics.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

/// The non-incremental baseline of the `sat_incremental` A/B bench:
/// the same attack, but every solver call rebuilds the miter plus all
/// accumulated DIP constraints in a **fresh** solver — the way
/// integrations around a stateless SAT solver (CNF file in, verdict
/// out) have to work. Nothing learnt in one call survives to the next,
/// and every call re-pays the full encoding cost.
///
/// Kept in the library (rather than the bench binary) so the
/// regression tests can hold the two implementations key-for-key equal.
#[derive(Debug)]
pub struct OneShotDipSolver<'a> {
    locked: &'a LockedNetlist,
    trace: Vec<(Vec<bool>, Vec<bool>)>,
    stats: SolverStats,
}

impl<'a> OneShotDipSolver<'a> {
    /// A baseline attack state for `locked` (no solver is built until
    /// the first call).
    pub fn new(locked: &'a LockedNetlist) -> OneShotDipSolver<'a> {
        OneShotDipSolver {
            locked,
            trace: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// Rebuilds miter + constraints from scratch and replays the trace.
    fn fresh(&self) -> DipSolver<'a> {
        let mut solver = DipSolver::new(self.locked);
        for (dip, response) in &self.trace {
            solver.constrain(dip, response);
        }
        solver
    }

    /// One-shot [`DipSolver::find_dip`]: full rebuild, then one solve.
    pub fn find_dip(&mut self) -> Option<Vec<bool>> {
        let mut solver = self.fresh();
        let dip = solver.find_dip();
        self.stats.accumulate(&solver.stats());
        dip
    }

    /// Records the oracle's verdict (pure bookkeeping — the constraint
    /// is re-encoded on every later rebuild).
    pub fn constrain(&mut self, dip: &[bool], response: &[bool]) {
        self.trace.push((dip.to_vec(), response.to_vec()));
    }

    /// One-shot [`DipSolver::extract_canonical_key`]: one rebuild, then
    /// the same bit-by-bit probes.
    pub fn extract_canonical_key(&mut self) -> BitVec {
        let mut solver = self.fresh();
        let key = solver.extract_canonical_key();
        self.stats.accumulate(&solver.stats());
        key
    }

    /// DIP constraints recorded so far.
    pub fn num_dips(&self) -> usize {
        self.trace.len()
    }

    /// Statistics summed over every rebuilt solver.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

/// Loads a freshly Tseitin-encoded CNF into `solver`; returns the map
/// from CNF variable index (1-based) to solver variable.
fn load_cnf(cnf: &Cnf, solver: &mut Solver) -> Vec<Var> {
    let vars = solver.new_vars(cnf.num_vars);
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        solver.add_clause(&lits);
    }
    vars
}

/// Encodes one unconstrained copy of the locked netlist; returns
/// `(input_vars, key_vars, output_vars)`.
fn encode_free_copy(locked: &LockedNetlist, solver: &mut Solver) -> (Vec<Var>, Vec<Var>, Vec<Var>) {
    let mut cnf = Cnf::new(0);
    let enc = tseitin_encode(locked.netlist(), &mut cnf);
    let vars = load_cnf(&cnf, solver);
    let var_of = |cnf_var: i32| vars[(cnf_var.unsigned_abs() - 1) as usize];
    let np = locked.num_primary_inputs();
    let nk = locked.num_key_bits();
    let inputs: Vec<Var> = (0..np).map(|i| var_of(enc.vars[i])).collect();
    let keys: Vec<Var> = (0..nk).map(|i| var_of(enc.vars[np + i])).collect();
    let outputs: Vec<Var> = locked
        .netlist()
        .outputs()
        .iter()
        .map(|o| var_of(enc.vars[o.index()]))
        .collect();
    (inputs, keys, outputs)
}

/// Encodes one circuit copy with primary inputs pinned to `dip` and
/// outputs pinned to `response`, its key vector tied to `shared_keys`.
///
/// The pin units go in *first*: `Solver::add_clause` drops clauses
/// already satisfied at the root and strips root-false literals, so by
/// the time the gate clauses arrive, everything the constants decide
/// has been folded away and only the key-dependent cone survives.
fn encode_pinned_copy(
    locked: &LockedNetlist,
    solver: &mut Solver,
    shared_keys: &[Var],
    dip: &[bool],
    response: &[bool],
) {
    let mut cnf = Cnf::new(0);
    let enc = tseitin_encode(locked.netlist(), &mut cnf);
    let vars = solver.new_vars(cnf.num_vars);
    let var_of = |cnf_var: i32| vars[(cnf_var.unsigned_abs() - 1) as usize];
    let np = locked.num_primary_inputs();

    for (i, &b) in dip.iter().enumerate() {
        solver.add_clause(&[Lit::new(var_of(enc.vars[i]), !b)]);
    }
    for (o, &b) in locked.netlist().outputs().iter().zip(response) {
        solver.add_clause(&[Lit::new(var_of(enc.vars[o.index()]), !b)]);
    }
    // Tie the copy's key bits to the shared key vector before the gate
    // clauses: root-level key units learned from earlier DIPs then
    // propagate into this copy immediately.
    for (i, shared) in shared_keys.iter().enumerate() {
        let kv = var_of(enc.vars[np + i]);
        solver.add_clause(&[Lit::pos(kv), Lit::neg(*shared)]);
        solver.add_clause(&[Lit::neg(kv), Lit::pos(*shared)]);
    }
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause.iter().map(|&l| Lit::new(var_of(l), l < 0)).collect();
        solver.add_clause(&lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinational::lock_xor;
    use mlam_netlist::generate::{c17, random_circuit, ripple_adder};
    use mlam_netlist::Netlist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Incremental and one-shot are different solver strategies over
    /// the same attack; the canonical key must not see the difference.
    #[test]
    fn incremental_and_oneshot_recover_the_identical_key() {
        let mut gen_rng = StdRng::seed_from_u64(77);
        let circuits: Vec<(Netlist, usize)> = vec![
            (c17(), 5),
            (ripple_adder(3), 6),
            (random_circuit(8, 40, 2, &mut gen_rng), 10),
        ];
        for (seed, (oracle, key_bits)) in circuits.into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(11 + seed as u64);
            let locked = lock_xor(&oracle, key_bits, &mut rng);

            let mut inc = DipSolver::new(&locked);
            while let Some(dip) = inc.find_dip() {
                let response = oracle.simulate(&dip);
                inc.constrain(&dip, &response);
                assert!(inc.num_dips() < 500, "runaway DIP loop");
            }
            let mut one = OneShotDipSolver::new(&locked);
            while let Some(dip) = one.find_dip() {
                let response = oracle.simulate(&dip);
                one.constrain(&dip, &response);
                assert!(one.num_dips() < 500, "runaway DIP loop");
            }

            let key_inc = inc.extract_canonical_key();
            let key_one = one.extract_canonical_key();
            assert_eq!(
                key_inc, key_one,
                "canonical keys diverged on circuit {seed}"
            );
            assert!(locked.equivalent_under_key(&oracle, &key_inc));
        }
    }

    #[test]
    fn oneshot_pays_more_than_incremental() {
        let oracle = ripple_adder(3);
        let mut rng = StdRng::seed_from_u64(21);
        let locked = lock_xor(&oracle, 8, &mut rng);

        let mut inc = DipSolver::new(&locked);
        while let Some(dip) = inc.find_dip() {
            let response = oracle.simulate(&dip);
            inc.constrain(&dip, &response);
        }
        let mut one = OneShotDipSolver::new(&locked);
        while let Some(dip) = one.find_dip() {
            let response = oracle.simulate(&dip);
            one.constrain(&dip, &response);
        }
        // The rebuild baseline re-propagates every root unit of every
        // replayed constraint on every call; with a non-trivial DIP
        // count its total propagation work must exceed the persistent
        // solver's.
        if inc.num_dips() >= 4 {
            assert!(
                one.stats().propagations > inc.stats().propagations,
                "one-shot {} vs incremental {}",
                one.stats().propagations,
                inc.stats().propagations
            );
        }
    }
}
