//! The oracle-guided SAT attack on combinational logic locking
//! (Subramanyan et al.; the paper's Section II-A frames it as a
//! provable ML algorithm obtained by reduction to SAT).
//!
//! The attack maintains a *miter*: two copies of the locked circuit
//! sharing the primary inputs but carrying independent key vectors, with
//! the constraint that some output differs. A model of the miter yields
//! a **distinguishing input pattern (DIP)**; querying the unlocked
//! oracle on the DIP and constraining both key copies to reproduce the
//! observed output prunes all keys inconsistent with it. When the miter
//! becomes UNSAT, every key consistent with the accumulated I/O
//! constraints is functionally correct.

use crate::combinational::LockedNetlist;
use mlam_boolean::BitVec;
use mlam_netlist::{cnf::tseitin_encode, Cnf, Netlist};
use mlam_sat::{Lit, SatResult, Solver, SolverStats, Var};

/// Configuration of the SAT attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatAttackConfig {
    /// Abort after this many DIP iterations.
    pub max_iterations: usize,
    /// Random samples used for the post-hoc accuracy estimate
    /// (exhaustive check is used when the input space is small).
    pub validation_samples: usize,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            max_iterations: 10_000,
            validation_samples: 2000,
        }
    }
}

/// Result of a SAT attack run.
#[derive(Clone, Debug)]
pub struct SatAttackResult {
    /// The recovered key.
    pub key: BitVec,
    /// DIP iterations used.
    pub iterations: usize,
    /// Whether the recovered key makes the locked circuit functionally
    /// equivalent to the oracle (exhaustive for ≤ 20 primary inputs).
    pub key_is_functionally_correct: bool,
    /// Total SAT conflicts across all solver calls.
    pub sat_conflicts: u64,
    /// Full solver statistics accumulated over the miter and the
    /// key-consistency solver.
    pub solver_stats: SolverStats,
}

/// Helper bundling a CNF buffer and its solver-variable offset: our CNF
/// builder allocates 1-based variables, which are mapped onto solver
/// variables on transfer.
struct CnfTransfer {
    vars: Vec<Var>,
}

impl CnfTransfer {
    /// Loads `cnf` into `solver` with fresh variables; returns the map
    /// from CNF variable index (1-based) to solver variable.
    fn load(cnf: &Cnf, solver: &mut Solver) -> CnfTransfer {
        let vars = solver.new_vars(cnf.num_vars);
        for clause in &cnf.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            solver.add_clause(&lits);
        }
        CnfTransfer { vars }
    }

    fn var(&self, cnf_var: i32) -> Var {
        self.vars[(cnf_var.unsigned_abs() - 1) as usize]
    }
}

/// Encodes one copy of the locked netlist into the solver; returns
/// `(input_vars, key_vars, output_vars)`.
pub(crate) fn encode_copy(
    locked: &LockedNetlist,
    solver: &mut Solver,
) -> (Vec<Var>, Vec<Var>, Vec<Var>) {
    let mut cnf = Cnf::new(0);
    let enc = tseitin_encode(locked.netlist(), &mut cnf);
    let transfer = CnfTransfer::load(&cnf, solver);
    let np = locked.num_primary_inputs();
    let nk = locked.num_key_bits();
    let inputs: Vec<Var> = (0..np).map(|i| transfer.var(enc.vars[i])).collect();
    let keys: Vec<Var> = (0..nk).map(|i| transfer.var(enc.vars[np + i])).collect();
    let outputs: Vec<Var> = locked
        .netlist()
        .outputs()
        .iter()
        .map(|o| transfer.var(enc.vars[o.index()]))
        .collect();
    (inputs, keys, outputs)
}

/// Adds the constraint "circuit(x = dip, key = key_vars) produces
/// outputs = response" by instantiating a fresh copy of the circuit with
/// pinned inputs and outputs, sharing `key_vars`.
pub(crate) fn add_io_constraint(
    locked: &LockedNetlist,
    solver: &mut Solver,
    key_vars: &[Var],
    dip: &[bool],
    response: &[bool],
) {
    let (inputs, keys, outputs) = encode_copy(locked, solver);
    for (v, &b) in inputs.iter().zip(dip) {
        solver.add_clause(&[Lit::new(*v, !b)]);
    }
    for (kv, shared) in keys.iter().zip(key_vars) {
        // kv <-> shared
        solver.add_clause(&[Lit::pos(*kv), Lit::neg(*shared)]);
        solver.add_clause(&[Lit::neg(*kv), Lit::pos(*shared)]);
    }
    for (v, &b) in outputs.iter().zip(response) {
        solver.add_clause(&[Lit::new(*v, !b)]);
    }
}

/// Remaining-key-space progress proxy for the DIP loop's learning
/// curve: each DIP eliminates at least one key (at best halving the
/// space), so after `dips` of at most `key_bits` possible halvings the
/// resolved fraction is bounded below by `dips / key_bits`, clamped to
/// 1. A zero-bit key is trivially resolved.
pub(crate) fn key_space_proxy(dips: usize, key_bits: usize) -> f64 {
    if key_bits == 0 {
        return 1.0;
    }
    1.0 - (key_bits.saturating_sub(dips)) as f64 / key_bits as f64
}

/// Runs the SAT attack against `locked`, with `oracle` standing in for
/// the activated chip (the attacker queries it on chosen inputs — the
/// *membership query* access of Section IV).
///
/// # Panics
///
/// Panics if the oracle's shape differs from the locked circuit's, or
/// if `max_iterations` is exhausted (indicating a pathological
/// instance).
pub fn sat_attack(
    locked: &LockedNetlist,
    oracle: &Netlist,
    config: SatAttackConfig,
) -> SatAttackResult {
    assert_eq!(
        oracle.num_inputs(),
        locked.num_primary_inputs(),
        "oracle input width"
    );
    assert_eq!(
        oracle.num_outputs(),
        locked.netlist().num_outputs(),
        "oracle output count"
    );

    // Miter solver: two copies with shared inputs, distinct keys.
    let mut miter = Solver::new();
    let (in1, key1, out1) = encode_copy(locked, &mut miter);
    let (in2, key2, out2) = encode_copy(locked, &mut miter);
    for (a, b) in in1.iter().zip(&in2) {
        miter.add_clause(&[Lit::pos(*a), Lit::neg(*b)]);
        miter.add_clause(&[Lit::neg(*a), Lit::pos(*b)]);
    }
    // Some output differs: OR over XOR outputs.
    let mut diff_lits = Vec::new();
    for (a, b) in out1.iter().zip(&out2) {
        let d = miter.new_var();
        // d <-> a XOR b
        miter.add_clause(&[Lit::neg(d), Lit::pos(*a), Lit::pos(*b)]);
        miter.add_clause(&[Lit::neg(d), Lit::neg(*a), Lit::neg(*b)]);
        miter.add_clause(&[Lit::pos(d), Lit::neg(*a), Lit::pos(*b)]);
        miter.add_clause(&[Lit::pos(d), Lit::pos(*a), Lit::neg(*b)]);
        diff_lits.push(Lit::pos(d));
    }
    miter.add_clause(&diff_lits);

    // Key-consistency solver: one key vector, accumulating I/O
    // constraints; any model is a key consistent with everything seen.
    let mut keysolver = Solver::new();
    let (_kin, keyvars, _kout) = encode_copy(locked, &mut keysolver);

    let _span = mlam_telemetry::span("locking.sat_attack").attr("key_bits", locked.num_key_bits());
    let mut iterations = 0usize;
    let mut last_checkpoint: Option<(u64, f64)> = None;
    loop {
        assert!(
            iterations < config.max_iterations,
            "SAT attack exceeded {} iterations",
            config.max_iterations
        );
        match miter.solve() {
            SatResult::Sat(model) => {
                iterations += 1;
                mlam_telemetry::counter!("locking.sat_attack.dips", 1);
                let dip: Vec<bool> = in1.iter().map(|v| model.value(*v)).collect();
                let response = oracle.simulate(&dip);
                // Prune the miter: both key copies must reproduce it.
                add_io_constraint(locked, &mut miter, &key1, &dip, &response);
                add_io_constraint(locked, &mut miter, &key2, &dip, &response);
                // And the key-consistency instance.
                add_io_constraint(locked, &mut keysolver, &keyvars, &dip, &response);
                // Learning-curve checkpoint at log-spaced DIP counts:
                // progress is a remaining-key-space proxy (each DIP
                // prunes at least one key, so `k` DIPs bound the attack
                // from below at `k` of the `num_key_bits` halvings).
                if mlam_telemetry::curves::recording()
                    && mlam_telemetry::curves::should_checkpoint(
                        iterations as u64,
                        config.max_iterations as u64,
                    )
                {
                    let proxy = key_space_proxy(iterations, locked.num_key_bits());
                    mlam_telemetry::curves::checkpoint(
                        "sat_attack",
                        iterations as u64,
                        proxy,
                        None,
                    );
                    last_checkpoint = Some((iterations as u64, proxy));
                }
            }
            SatResult::Unsat => break,
        }
    }
    // Close the curve at the UNSAT point: the key space is fully
    // pruned, so the resolved fraction is 1 regardless of DIP count.
    if mlam_telemetry::curves::recording() && last_checkpoint != Some((iterations as u64, 1.0)) {
        mlam_telemetry::curves::checkpoint("sat_attack", iterations as u64, 1.0, None);
    }

    // Extract any consistent key.
    let key = match keysolver.solve() {
        SatResult::Sat(model) => {
            let mut k = BitVec::zeros(locked.num_key_bits());
            for (i, v) in keyvars.iter().enumerate() {
                k.set(i, model.value(*v));
            }
            k
        }
        SatResult::Unsat => unreachable!("the correct key is always consistent"),
    };

    let key_is_functionally_correct = if locked.num_primary_inputs() <= 16 {
        locked.equivalent_under_key(oracle, &key)
    } else {
        // Formal BDD-based check: exact for any input width (the
        // `validation_samples` knob remains for callers that validate
        // separately by sampling).
        let _ = config.validation_samples;
        locked.equivalent_under_key_formal(oracle, &key)
    };

    let mut solver_stats = miter.stats();
    solver_stats.accumulate(&keysolver.stats());
    SatAttackResult {
        key,
        iterations,
        key_is_functionally_correct,
        sat_conflicts: solver_stats.conflicts,
        solver_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinational::lock_xor;
    use mlam_netlist::generate::{c17, comparator, random_circuit, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attack_and_check(oracle: &Netlist, key_bits: usize, seed: u64) -> SatAttackResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let locked = lock_xor(oracle, key_bits, &mut rng);
        let result = sat_attack(&locked, oracle, SatAttackConfig::default());
        assert!(
            result.key_is_functionally_correct,
            "recovered key must unlock the circuit (seed {seed})"
        );
        result
    }

    #[test]
    fn recovers_c17_key() {
        let r = attack_and_check(&c17(), 4, 1);
        assert!(r.iterations <= 32, "iterations {}", r.iterations);
    }

    #[test]
    fn recovers_adder_key() {
        attack_and_check(&ripple_adder(3), 6, 2);
    }

    #[test]
    fn recovers_comparator_key() {
        attack_and_check(&comparator(4), 8, 3);
    }

    #[test]
    fn recovers_random_circuit_keys() {
        let mut rng = StdRng::seed_from_u64(4);
        for seed in 0..3 {
            let oracle = random_circuit(8, 40, 2, &mut rng);
            attack_and_check(&oracle, 10, 100 + seed);
        }
    }

    #[test]
    fn recovered_key_may_differ_but_is_equivalent() {
        // Functional equivalence is what matters: with XOR-masking
        // interactions there can be multiple correct keys.
        let r = attack_and_check(&c17(), 6, 5);
        assert!(r.key.len() == 6);
    }

    #[test]
    fn iteration_count_is_logarithmic_ish_in_keyspace() {
        // The DIP loop prunes many keys at once: iterations should be
        // far below 2^key_bits.
        let r = attack_and_check(&ripple_adder(3), 8, 6);
        assert!(
            r.iterations < 64,
            "DIP iterations {} should be << 256",
            r.iterations
        );
    }
}
