//! The oracle-guided SAT attack on combinational logic locking
//! (Subramanyan et al.; the paper's Section II-A frames it as a
//! provable ML algorithm obtained by reduction to SAT).
//!
//! The attack maintains a *miter*: two copies of the locked circuit
//! sharing the primary inputs but carrying independent key vectors, with
//! the constraint that some output differs. A model of the miter yields
//! a **distinguishing input pattern (DIP)**; querying the unlocked
//! oracle on the DIP and constraining both key copies to reproduce the
//! observed output prunes all keys inconsistent with it. When the miter
//! becomes UNSAT, every key consistent with the accumulated I/O
//! constraints is functionally correct.
//!
//! Since the incremental-solver rework, the whole loop runs inside one
//! persistent [`DipSolver`]: the miter is encoded once, DIP constraints
//! accumulate in place, key extraction is an assumption flip rather
//! than a second solver, and everything the solver learnt on earlier
//! iterations carries into later ones. `EXPERIMENTS.md` documents the
//! loop and the `sat_incremental` A/B bench that quantifies the win.

use crate::combinational::LockedNetlist;
use crate::dip::DipSolver;
use mlam_boolean::BitVec;
use mlam_netlist::{cnf::tseitin_encode, Cnf, Netlist};
use mlam_sat::{Lit, Solver, SolverStats, Var};

/// Configuration of the SAT attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatAttackConfig {
    /// Abort after this many DIP iterations.
    pub max_iterations: usize,
    /// Random samples used for the post-hoc accuracy estimate
    /// (exhaustive check is used when the input space is small).
    pub validation_samples: usize,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            max_iterations: 10_000,
            validation_samples: 2000,
        }
    }
}

/// Result of a SAT attack run.
#[derive(Clone, Debug)]
pub struct SatAttackResult {
    /// The recovered key.
    pub key: BitVec,
    /// DIP iterations used.
    pub iterations: usize,
    /// Whether the recovered key makes the locked circuit functionally
    /// equivalent to the oracle (exhaustive for ≤ 20 primary inputs).
    pub key_is_functionally_correct: bool,
    /// Total SAT conflicts across all solver calls.
    pub sat_conflicts: u64,
    /// Statistics of the persistent attack solver.
    pub solver_stats: SolverStats,
}

/// Helper bundling a CNF buffer and its solver-variable offset: our CNF
/// builder allocates 1-based variables, which are mapped onto solver
/// variables on transfer.
struct CnfTransfer {
    vars: Vec<Var>,
}

impl CnfTransfer {
    /// Loads `cnf` into `solver` with fresh variables; returns the map
    /// from CNF variable index (1-based) to solver variable.
    fn load(cnf: &Cnf, solver: &mut Solver) -> CnfTransfer {
        let vars = solver.new_vars(cnf.num_vars);
        for clause in &cnf.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            solver.add_clause(&lits);
        }
        CnfTransfer { vars }
    }

    fn var(&self, cnf_var: i32) -> Var {
        self.vars[(cnf_var.unsigned_abs() - 1) as usize]
    }
}

/// Encodes one copy of the locked netlist into the solver; returns
/// `(input_vars, key_vars, output_vars)`.
pub(crate) fn encode_copy(
    locked: &LockedNetlist,
    solver: &mut Solver,
) -> (Vec<Var>, Vec<Var>, Vec<Var>) {
    let mut cnf = Cnf::new(0);
    let enc = tseitin_encode(locked.netlist(), &mut cnf);
    let transfer = CnfTransfer::load(&cnf, solver);
    let np = locked.num_primary_inputs();
    let nk = locked.num_key_bits();
    let inputs: Vec<Var> = (0..np).map(|i| transfer.var(enc.vars[i])).collect();
    let keys: Vec<Var> = (0..nk).map(|i| transfer.var(enc.vars[np + i])).collect();
    let outputs: Vec<Var> = locked
        .netlist()
        .outputs()
        .iter()
        .map(|o| transfer.var(enc.vars[o.index()]))
        .collect();
    (inputs, keys, outputs)
}

/// Adds the constraint "circuit(x = dip, key = key_vars) produces
/// outputs = response" by instantiating a fresh copy of the circuit with
/// pinned inputs and outputs, sharing `key_vars`.
///
/// Pin units are added **before** the gate clauses: the solver's
/// root-level simplification then constant-folds most of the copy away
/// as it arrives (clauses satisfied by a pinned literal are dropped,
/// root-false literals stripped), so each constraint costs far fewer
/// live clauses than a naive copy.
pub(crate) fn add_io_constraint(
    locked: &LockedNetlist,
    solver: &mut Solver,
    key_vars: &[Var],
    dip: &[bool],
    response: &[bool],
) {
    let mut cnf = Cnf::new(0);
    let enc = tseitin_encode(locked.netlist(), &mut cnf);
    let vars = solver.new_vars(cnf.num_vars);
    let var_of = |cnf_var: i32| vars[(cnf_var.unsigned_abs() - 1) as usize];
    let np = locked.num_primary_inputs();

    for (i, &b) in dip.iter().enumerate() {
        solver.add_clause(&[Lit::new(var_of(enc.vars[i]), !b)]);
    }
    for (o, &b) in locked.netlist().outputs().iter().zip(response) {
        solver.add_clause(&[Lit::new(var_of(enc.vars[o.index()]), !b)]);
    }
    for (i, shared) in key_vars.iter().enumerate() {
        let kv = var_of(enc.vars[np + i]);
        // kv <-> shared
        solver.add_clause(&[Lit::pos(kv), Lit::neg(*shared)]);
        solver.add_clause(&[Lit::neg(kv), Lit::pos(*shared)]);
    }
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause.iter().map(|&l| Lit::new(var_of(l), l < 0)).collect();
        solver.add_clause(&lits);
    }
}

/// Remaining-key-space progress proxy for the DIP loop's learning
/// curve: each DIP eliminates at least one key (at best halving the
/// space), so after `dips` of at most `key_bits` possible halvings the
/// resolved fraction is bounded below by `dips / key_bits`, clamped to
/// 1. A zero-bit key is trivially resolved.
pub(crate) fn key_space_proxy(dips: usize, key_bits: usize) -> f64 {
    if key_bits == 0 {
        return 1.0;
    }
    1.0 - (key_bits.saturating_sub(dips)) as f64 / key_bits as f64
}

/// Runs the SAT attack against `locked`, with `oracle` standing in for
/// the activated chip (the attacker queries it on chosen inputs — the
/// *membership query* access of Section IV).
///
/// # Panics
///
/// Panics if the oracle's shape differs from the locked circuit's, or
/// if `max_iterations` is exhausted (indicating a pathological
/// instance).
pub fn sat_attack(
    locked: &LockedNetlist,
    oracle: &Netlist,
    config: SatAttackConfig,
) -> SatAttackResult {
    assert_eq!(
        oracle.num_inputs(),
        locked.num_primary_inputs(),
        "oracle input width"
    );
    assert_eq!(
        oracle.num_outputs(),
        locked.netlist().num_outputs(),
        "oracle output count"
    );

    let mut dip_solver = DipSolver::new(locked);

    let _span = mlam_telemetry::span("locking.sat_attack").attr("key_bits", locked.num_key_bits());
    let mut iterations = 0usize;
    let mut last_checkpoint: Option<(u64, f64)> = None;
    while let Some(dip) = dip_solver.find_dip() {
        iterations += 1;
        assert!(
            iterations <= config.max_iterations,
            "SAT attack exceeded {} iterations",
            config.max_iterations
        );
        mlam_telemetry::counter!("locking.sat_attack.dips", 1);
        let response = oracle.simulate(&dip);
        dip_solver.constrain(&dip, &response);
        // Learning-curve checkpoint at log-spaced DIP counts:
        // progress is a remaining-key-space proxy (each DIP
        // prunes at least one key, so `k` DIPs bound the attack
        // from below at `k` of the `num_key_bits` halvings).
        if mlam_telemetry::curves::recording()
            && mlam_telemetry::curves::should_checkpoint(
                iterations as u64,
                config.max_iterations as u64,
            )
        {
            let proxy = key_space_proxy(iterations, locked.num_key_bits());
            mlam_telemetry::curves::checkpoint("sat_attack", iterations as u64, proxy, None);
            last_checkpoint = Some((iterations as u64, proxy));
        }
    }
    // Close the curve at the UNSAT point: the key space is fully
    // pruned, so the resolved fraction is 1 regardless of DIP count.
    if mlam_telemetry::curves::recording() && last_checkpoint != Some((iterations as u64, 1.0)) {
        mlam_telemetry::curves::checkpoint("sat_attack", iterations as u64, 1.0, None);
    }

    // Extract any consistent key — an assumption flip on the same
    // solver, reusing everything the DIP loop learnt.
    let key = dip_solver.extract_key();

    let key_is_functionally_correct = if locked.num_primary_inputs() <= 16 {
        locked.equivalent_under_key(oracle, &key)
    } else {
        // Formal BDD-based check: exact for any input width (the
        // `validation_samples` knob remains for callers that validate
        // separately by sampling).
        let _ = config.validation_samples;
        locked.equivalent_under_key_formal(oracle, &key)
    };

    let solver_stats = dip_solver.stats();
    SatAttackResult {
        key,
        iterations,
        key_is_functionally_correct,
        sat_conflicts: solver_stats.conflicts,
        solver_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinational::lock_xor;
    use mlam_netlist::generate::{c17, comparator, random_circuit, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attack_and_check(oracle: &Netlist, key_bits: usize, seed: u64) -> SatAttackResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let locked = lock_xor(oracle, key_bits, &mut rng);
        let result = sat_attack(&locked, oracle, SatAttackConfig::default());
        assert!(
            result.key_is_functionally_correct,
            "recovered key must unlock the circuit (seed {seed})"
        );
        result
    }

    #[test]
    fn recovers_c17_key() {
        let r = attack_and_check(&c17(), 4, 1);
        assert!(r.iterations <= 32, "iterations {}", r.iterations);
    }

    #[test]
    fn recovers_adder_key() {
        attack_and_check(&ripple_adder(3), 6, 2);
    }

    #[test]
    fn recovers_comparator_key() {
        attack_and_check(&comparator(4), 8, 3);
    }

    #[test]
    fn recovers_random_circuit_keys() {
        let mut rng = StdRng::seed_from_u64(4);
        for seed in 0..3 {
            let oracle = random_circuit(8, 40, 2, &mut rng);
            attack_and_check(&oracle, 10, 100 + seed);
        }
    }

    #[test]
    fn recovered_key_may_differ_but_is_equivalent() {
        // Functional equivalence is what matters: with XOR-masking
        // interactions there can be multiple correct keys.
        let r = attack_and_check(&c17(), 6, 5);
        assert!(r.key.len() == 6);
    }

    #[test]
    fn iteration_count_is_logarithmic_ish_in_keyspace() {
        // The DIP loop prunes many keys at once: iterations should be
        // far below 2^key_bits.
        let r = attack_and_check(&ripple_adder(3), 8, 6);
        assert!(
            r.iterations < 64,
            "DIP iterations {} should be << 256",
            r.iterations
        );
    }

    #[test]
    fn attack_is_deterministic_across_runs() {
        // The persistent solver is single-threaded and
        // assumption-deterministic: two runs on the same instance must
        // produce the identical key, DIP count, and counters.
        let oracle = ripple_adder(3);
        let mut rng = StdRng::seed_from_u64(42);
        let locked = lock_xor(&oracle, 6, &mut rng);
        let a = sat_attack(&locked, &oracle, SatAttackConfig::default());
        let b = sat_attack(&locked, &oracle, SatAttackConfig::default());
        assert_eq!(a.key, b.key);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.solver_stats.conflicts, b.solver_stats.conflicts);
        assert_eq!(a.solver_stats.decisions, b.solver_stats.decisions);
        assert_eq!(a.solver_stats.propagations, b.solver_stats.propagations);
    }

    #[test]
    fn learnt_persistence_never_changes_the_consistent_key_set() {
        // Regression for the incremental rework: clauses learnt while
        // finding DIPs stay in the solver for later calls. Learnt
        // clauses are logical consequences, so the set of keys
        // consistent with the accumulated I/O constraints must be
        // exactly what a cold solver computes from the same
        // constraints. Enumerate the full key space on a small
        // instance and compare the warm attack solver's verdicts
        // against fresh single-use solvers.
        let oracle = c17();
        let mut rng = StdRng::seed_from_u64(9);
        let key_bits = 4;
        let locked = lock_xor(&oracle, key_bits, &mut rng);

        // Warm solver: run the full DIP loop on it.
        let mut warm = crate::dip::DipSolver::new(&locked);
        let mut trace: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        while let Some(dip) = warm.find_dip() {
            let response = oracle.simulate(&dip);
            warm.constrain(&dip, &response);
            trace.push((dip, response));
            assert!(trace.len() < 100, "runaway DIP loop");
        }
        assert!(warm.stats().learnts > 0 || warm.stats().conflicts == 0);

        for mask in 0u32..(1 << key_bits) {
            let mut key = BitVec::zeros(key_bits);
            for i in 0..key_bits {
                key.set(i, mask >> i & 1 == 1);
            }
            // Cold verdict: a fresh solver fed only the constraints.
            let mut cold = crate::dip::DipSolver::new(&locked);
            for (dip, response) in &trace {
                cold.constrain(dip, response);
            }
            assert_eq!(
                warm.is_key_consistent(&key),
                cold.is_key_consistent(&key),
                "learnt clauses changed the verdict for key {mask:04b}"
            );
            // And consistency must coincide with functional
            // correctness once the space is fully pruned.
            assert_eq!(
                warm.is_key_consistent(&key),
                locked.equivalent_under_key(&oracle, &key),
                "fully pruned key set must be exactly the correct keys"
            );
        }
    }
}
