//! Property-based tests for locking schemes and attacks.

use mlam_locking::combinational::lock_xor;
use mlam_locking::sat_attack::{sat_attack, SatAttackConfig};
use mlam_locking::sequential::{Fsm, ObfuscatedFsm};
use mlam_netlist::generate::random_circuit;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Locking with the correct key is always functionally transparent.
    #[test]
    fn correct_key_is_transparent(seed in any::<u64>(), key_bits in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let oracle = random_circuit(7, 30, 2, &mut rng);
        let locked = lock_xor(&oracle, key_bits, &mut rng);
        let key = locked.correct_key().clone();
        prop_assert!(locked.equivalent_under_key(&oracle, &key));
    }

    /// The SAT attack always recovers a functionally correct key.
    #[test]
    fn sat_attack_always_succeeds(seed in any::<u64>(), key_bits in 1usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let oracle = random_circuit(7, 30, 2, &mut rng);
        let locked = lock_xor(&oracle, key_bits, &mut rng);
        let result = sat_attack(&locked, &oracle, SatAttackConfig::default());
        prop_assert!(result.key_is_functionally_correct);
        prop_assert!(result.iterations <= 1 << key_bits);
    }

    /// The obfuscated FSM's functional mode is reached by the unlock
    /// sequence and the behaviour thereafter equals the original.
    #[test]
    fn unlock_sequence_restores_functionality(
        seed in any::<u64>(),
        states in 2usize..8,
        len in 1usize..5,
        probe in prop::collection::vec(0usize..2, 0..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fsm = Fsm::random(states, 2, &mut rng);
        let seq: Vec<usize> = (0..len).map(|_| rand::Rng::gen_range(&mut rng, 0..2)).collect();
        let obf = ObfuscatedFsm::new(fsm.clone(), seq.clone());
        let mut word = seq.clone();
        word.extend_from_slice(&probe);
        prop_assert_eq!(obf.combined().output(&word), fsm.output(&probe));
    }

    /// Before the unlock sequence completes, the output is the
    /// obfuscation constant (false).
    #[test]
    fn partial_unlock_stays_locked(seed in any::<u64>(), states in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fsm = Fsm::random(states, 2, &mut rng);
        // Unlock sequence of length 4; feed only 3 symbols of it.
        let seq: Vec<usize> = (0..4).map(|_| rand::Rng::gen_range(&mut rng, 0..2)).collect();
        let obf = ObfuscatedFsm::new(fsm, seq.clone());
        prop_assert!(!obf.combined().output(&seq[..3]));
        prop_assert!(!obf.combined().output(&[]));
    }
}
