//! Bridges telemetry's thread-local ambient state onto `mlam-par`
//! worker threads.
//!
//! Telemetry keeps two pieces of per-thread context: the active
//! [`crate::metrics::CounterScope`] (which experiment increments are
//! attributed to) and the innermost live span (what new spans nest
//! under). Both live in thread-locals, so work fanned out to worker
//! threads would lose them — experiment counters would leak out of
//! their scope and worker spans would become roots, *only* at thread
//! counts above one. That asymmetry would break the determinism
//! contract (`mlam-trace compare` treats counter drift as a hard
//! failure), so propagation is not optional polish: it is what makes
//! observability output thread-count invariant.
//!
//! The bridge uses `mlam-par`'s context hook, keeping the dependency
//! direction telemetry → par: the runtime knows nothing about
//! telemetry, it just calls the registered hook at the start of every
//! parallel call and hands each worker the captured context to
//! re-install (RAII) around its task batch.

use crate::metrics;
use crate::span::{self, SpanContext};
use std::any::Any;
use std::sync::Arc;

/// The ambient telemetry state of the thread that submitted a parallel
/// call, in portable form.
struct Captured {
    sink: Option<Arc<metrics::ScopeSink>>,
    span: Option<SpanContext>,
}

impl mlam_par::CapturedContext for Captured {
    fn resume(&self) -> Box<dyn Any> {
        let sink_guard = self
            .sink
            .as_ref()
            .map(|sink| metrics::enter_sink(Arc::clone(sink)));
        let span_guard = self.span.clone().map(span::enter_context);
        Box::new((sink_guard, span_guard))
    }
}

fn capture() -> Option<Box<dyn mlam_par::CapturedContext>> {
    let sink = metrics::current_sink();
    let span = span::current_context();
    if sink.is_none() && span.is_none() {
        return None;
    }
    Some(Box::new(Captured { sink, span }))
}

/// Registers telemetry's context hook with the parallel runtime.
/// Idempotent and cheap; [`crate::metrics::CounterScope::new`] calls
/// it, so any pipeline that attributes counters is wired up before its
/// first parallel call.
pub fn install_parallel_propagation() {
    mlam_par::set_context_hook(capture);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter_handle, CounterScope};

    /// End-to-end: a counter scope and a live span both follow work
    /// into `mlam-par` workers, and attribution totals are identical
    /// at every thread count.
    #[test]
    fn context_follows_work_onto_workers() {
        install_parallel_propagation();
        let c = counter_handle("test.propagate.queries");
        let outer = crate::span("propagate-outer");
        let outer_id = outer.id();
        let mut per_thread_totals = Vec::new();
        for t in [1, 2, 4] {
            let scope = CounterScope::new();
            let parents = {
                let _guard = scope.enter();
                mlam_par::pool::par_map_index_with_threads(t, 200, |i| {
                    c.add(1 + (i % 3) as u64);
                    let child = crate::span("propagate-child");
                    child.parent_id()
                })
            };
            for parent in parents {
                assert_eq!(parent, Some(outer_id), "t={t}");
            }
            per_thread_totals.push(scope.take()["test.propagate.queries"]);
        }
        assert_eq!(per_thread_totals[0], per_thread_totals[1]);
        assert_eq!(per_thread_totals[0], per_thread_totals[2]);
    }
}
