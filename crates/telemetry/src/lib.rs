//! Telemetry for the mlam attack pipeline: RAII spans, global metrics,
//! and JSONL run manifests.
//!
//! Everything here is strictly additive observability: output goes to
//! **stderr** (gated by the `MLAM_LOG` environment variable) or to
//! files explicitly requested by the caller (`--json` in the bench
//! binaries). With `MLAM_LOG` unset and no JSONL sink installed, the
//! pipeline's stdout is byte-identical to a build without telemetry.
//!
//! The three layers:
//!
//! - [`mod@span`] — scoped wall-clock timing. `span::span("name")` returns
//!   a guard; dropping it records the elapsed time, feeds the
//!   per-span-name duration histogram, and emits start/end events to
//!   the installed sinks. Every event carries a process-unique span id
//!   and the parent span's id, so `mlam-trace` can rebuild the span
//!   tree (and export Chrome Trace Format) from `events.jsonl` alone.
//! - [`metrics`] — process-global named [`Counter`]s (atomic) and
//!   log₂-bucketed [`Histogram`]s, snapshotted as plain maps so callers
//!   can diff before/after an experiment.
//! - [`manifest`] — the serde-serializable [`RunManifest`] written by
//!   `repro_all --json`, recording seed, parameters, crate versions,
//!   and per-experiment wall-clock plus counter deltas.
//!
//! Layered on top, [`curves`] records deterministic accuracy-vs-queries
//! learning curves (`curves.jsonl`): training loops call
//! [`curves::checkpoint`] — free when no recording context is
//! installed — and the query budget is read exactly from the active
//! [`CounterScope`].

#![warn(missing_docs)]

pub mod curves;
pub mod manifest;
pub mod metrics;
pub mod propagate;
pub mod recorder;
pub mod rundir;
pub mod span;

pub use curves::{CurvePoint, CurveRecorder, CurveSink, CURVES_FILE};
pub use manifest::{ExperimentRecord, RunManifest};
pub use metrics::{
    counter_handle, histogram_handle, scope_counter_totals, snapshot, write_metrics_jsonl, Counter,
    CounterScope, CounterScopeGuard, Histogram, HistogramSnapshot, MetricLine, MetricsSnapshot,
};
pub use propagate::install_parallel_propagation;
pub use recorder::{add_sink, stderr_level, Event, EventKind, JsonlSink, Level, Sink};
pub use rundir::RunDir;
pub use span::{current_context, enter_context, span, Span, SpanContext, SpanContextGuard};

/// Looks up (and caches, via a hidden `static`) the named counter, then
/// adds `delta` to it. With one argument, returns the cached
/// [`Counter`] handle instead.
///
/// The name must be a literal so the cache is sound; use
/// [`counter_handle`] for dynamically built names.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __MLAM_COUNTER: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        __MLAM_COUNTER.get_or_init(|| $crate::metrics::counter_handle($name))
    }};
    ($name:literal, $delta:expr) => {
        $crate::counter!($name).add($delta as u64)
    };
}

/// Looks up (and caches) the named histogram; with a second argument,
/// records one observation into it.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static __MLAM_HISTOGRAM: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        __MLAM_HISTOGRAM.get_or_init(|| $crate::metrics::histogram_handle($name))
    }};
    ($name:literal, $value:expr) => {
        $crate::histogram!($name).observe($value as u64)
    };
}
