//! The run manifest: one serde-serializable record of an entire
//! reproduction run, written as `manifest.json` by `repro_all --json`.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bumped when the manifest layout changes incompatibly.
///
/// v2: added the `threads` field (worker threads used for the run).
/// v3: added the per-experiment `degraded` flag (experiment failed and
/// was recorded as a partial result instead of aborting the run).
pub const MANIFEST_SCHEMA_VERSION: u32 = 3;

/// Wall-clock and query accounting for one experiment in a run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The experiment's name (its `--json` file is `<name>.json`).
    pub name: String,
    /// Wall-clock seconds spent inside the experiment driver.
    pub seconds: f64,
    /// Counter increments attributable to this experiment (snapshot
    /// delta around the driver call); zero-delta counters are omitted.
    pub counters: BTreeMap<String, u64>,
    /// The experiment failed and this record holds a partial result
    /// (wall-clock and counters up to the failure, no tables). Absent
    /// in pre-v3 manifests, which defaults to `false`.
    #[serde(default)]
    pub degraded: bool,
}

/// Everything needed to identify and compare reproduction runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// [`MANIFEST_SCHEMA_VERSION`] at the time the run was written.
    pub schema_version: u32,
    /// The binary that produced the run (e.g. `repro_all`).
    pub tool: String,
    /// Root RNG seed for the whole run.
    pub seed: u64,
    /// Whether the reduced `--quick` parameter set was used.
    pub quick: bool,
    /// Worker threads used for the run (`MLAM_THREADS`). Recorded for
    /// performance context only: results are thread-count invariant,
    /// and `mlam-trace compare` accepts runs with different `threads`.
    pub threads: usize,
    /// Wall-clock start of the run, Unix milliseconds.
    pub started_unix_ms: u64,
    /// Total wall-clock seconds for the run.
    pub total_seconds: f64,
    /// `(crate, version)` pairs of the workspace crates involved.
    pub crate_versions: Vec<(String, String)>,
    /// Per-experiment accounting, in execution order.
    pub experiments: Vec<ExperimentRecord>,
    /// Final process-wide metrics at the end of the run.
    pub final_metrics: MetricsSnapshot,
}

impl RunManifest {
    /// A manifest with run identity filled in and no experiments yet.
    pub fn new(tool: impl Into<String>, seed: u64, quick: bool) -> RunManifest {
        let started_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            tool: tool.into(),
            seed,
            quick,
            threads: 1,
            started_unix_ms,
            total_seconds: 0.0,
            crate_versions: Vec::new(),
            experiments: Vec::new(),
            final_metrics: MetricsSnapshot::default(),
        }
    }

    /// The total query-style counters across all experiments — handy
    /// for diffing two manifests for behavioral drift.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for exp in &self.experiments {
            for (name, delta) in &exp.counters {
                *totals.entry(name.clone()).or_insert(0) += delta;
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = RunManifest::new("repro_all", 0xDA7E_2020, true);
        manifest.threads = 4;
        manifest
            .crate_versions
            .push(("mlam".into(), "0.1.0".into()));
        manifest.experiments.push(ExperimentRecord {
            name: "table1".into(),
            seconds: 1.25,
            counters: BTreeMap::from([("oracle.example_queries".into(), 2000u64)]),
            degraded: false,
        });
        manifest.total_seconds = 1.5;
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn counter_totals_sum_across_experiments() {
        let mut manifest = RunManifest::new("t", 1, false);
        for name in ["a", "b"] {
            manifest.experiments.push(ExperimentRecord {
                name: name.into(),
                seconds: 0.0,
                counters: BTreeMap::from([("q".into(), 10u64)]),
                degraded: false,
            });
        }
        assert_eq!(manifest.counter_totals()["q"], 20);
    }
}
