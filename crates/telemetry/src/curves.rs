//! Deterministic learning-curve recording: accuracy-vs-queries
//! checkpoints emitted from inside training loops.
//!
//! The paper's three-axis adversary model prices attacks in *queries*,
//! so a learner's trajectory is only meaningful against the exact
//! query budget it has spent. This module provides the recording
//! substrate:
//!
//! - [`CurvePoint`] — one checkpoint: iteration/epoch, exact query
//!   counts (sourced from the `oracle.query.*` budget counters of the
//!   active [`CounterScope`]), training accuracy, optional holdout
//!   accuracy, and the raw counter deltas the queries were derived
//!   from.
//! - [`CurveSink`] — where checkpoints go. [`CurveRecorder`] buffers
//!   them for the `curves.jsonl` run artifact; `mlam-monitor` feeds a
//!   live `/curves` endpoint from its own sink.
//! - [`enter_series`] — installs a thread-local recording context
//!   (series name + sinks) around one experiment driver, exactly like
//!   [`CounterScope::enter`] installs counter attribution.
//! - [`checkpoint`] — called from training loops; a no-op costing one
//!   thread-local read when no context is installed, so instrumented
//!   loops are zero-cost in ordinary library use.
//! - [`should_checkpoint`] — the shared log-spaced schedule (powers of
//!   two plus the final iteration) that keeps recording overhead and
//!   artifact size bounded on long runs.
//!
//! Determinism: checkpoints are emitted from the experiment's own
//! thread in loop order, and query counts come from the deterministic
//! counter-scope totals, so `curves.jsonl` is byte-identical across
//! thread counts and monitor on/off — the same firewall contract as
//! `metrics.jsonl`. The curve path registers no counters and never
//! touches the telemetry registry.
//!
//! [`CounterScope`]: crate::CounterScope
//! [`CounterScope::enter`]: crate::CounterScope::enter

use crate::metrics::scope_counter_totals;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// File name of the curves artifact inside a run directory.
pub const CURVES_FILE: &str = "curves.jsonl";

/// Counter-name prefixes captured into each checkpoint's `counters`
/// map (and from which the query budget is derived).
pub const CURVE_COUNTER_PREFIXES: &[&str] = &["oracle.", "locking."];

/// One checkpoint on a learning curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Which instrumented loop emitted the point (`perceptron`,
    /// `sat_attack`, …) — several learners may run inside one series.
    pub label: String,
    /// 1-based iteration / epoch / round / DIP count within the loop.
    pub iteration: u64,
    /// Exact logical queries spent so far in the enclosing counter
    /// scope (see [`query_budget`] for the derivation).
    pub queries: u64,
    /// Exact raw oracle reads so far (≥ `queries` when an unreliable
    /// oracle retries or majority-votes; equal otherwise).
    pub raw_reads: u64,
    /// Training accuracy at this checkpoint, in `[0, 1]`.
    pub train_acc: f64,
    /// Holdout accuracy, when the loop evaluates one (most loops
    /// don't — the per-experiment holdout lives in the tables).
    pub holdout_acc: Option<f64>,
    /// The scope counter deltas (filtered to
    /// [`CURVE_COUNTER_PREFIXES`]) the budget was computed from.
    pub counters: BTreeMap<String, u64>,
}

/// One `curves.jsonl` line: a [`CurvePoint`] tagged with its series
/// name. Kept flat (fields repeated rather than nested) so each line
/// is a plain one-level JSON object.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CurveLine {
    /// The series (experiment) name the point belongs to.
    pub series: String,
    /// See [`CurvePoint::label`].
    pub label: String,
    /// See [`CurvePoint::iteration`].
    pub iteration: u64,
    /// See [`CurvePoint::queries`].
    pub queries: u64,
    /// See [`CurvePoint::raw_reads`].
    pub raw_reads: u64,
    /// See [`CurvePoint::train_acc`].
    pub train_acc: f64,
    /// See [`CurvePoint::holdout_acc`].
    pub holdout_acc: Option<f64>,
    /// See [`CurvePoint::counters`].
    pub counters: BTreeMap<String, u64>,
}

impl CurveLine {
    /// Splits the line into its series name and point.
    pub fn into_parts(self) -> (String, CurvePoint) {
        (
            self.series,
            CurvePoint {
                label: self.label,
                iteration: self.iteration,
                queries: self.queries,
                raw_reads: self.raw_reads,
                train_acc: self.train_acc,
                holdout_acc: self.holdout_acc,
                counters: self.counters,
            },
        )
    }

    /// Builds a line from a series name and a point.
    pub fn from_parts(series: &str, point: &CurvePoint) -> CurveLine {
        CurveLine {
            series: series.to_string(),
            label: point.label.clone(),
            iteration: point.iteration,
            queries: point.queries,
            raw_reads: point.raw_reads,
            train_acc: point.train_acc,
            holdout_acc: point.holdout_acc,
            counters: point.counters.clone(),
        }
    }
}

/// A destination for curve checkpoints. Implementations must tolerate
/// concurrent calls from different experiment threads (each series is
/// only ever fed from one thread, but distinct series may run in
/// parallel).
pub trait CurveSink: Send + Sync {
    /// Receives one checkpoint for `series`.
    fn on_point(&self, series: &str, point: &CurvePoint);
}

/// The buffering sink behind the `curves.jsonl` artifact: collects
/// every checkpoint per series, to be written out at session finish.
#[derive(Default)]
pub struct CurveRecorder {
    series: Mutex<BTreeMap<String, Vec<CurvePoint>>>,
}

impl CurveRecorder {
    /// An empty recorder.
    pub fn new() -> CurveRecorder {
        CurveRecorder::default()
    }

    /// A copy of everything recorded so far, keyed by series name,
    /// points in emission order.
    pub fn series(&self) -> BTreeMap<String, Vec<CurvePoint>> {
        self.series.lock().expect("curve recorder poisoned").clone()
    }
}

impl CurveSink for CurveRecorder {
    fn on_point(&self, series: &str, point: &CurvePoint) {
        self.series
            .lock()
            .expect("curve recorder poisoned")
            .entry(series.to_owned())
            .or_default()
            .push(point.clone());
    }
}

/// Writes a series map as JSONL: one [`CurveLine`] per checkpoint,
/// series in name order (the map's), points in emission order.
pub fn write_curves_jsonl<W: io::Write>(
    mut out: W,
    series: &BTreeMap<String, Vec<CurvePoint>>,
) -> io::Result<()> {
    let to_io_err = |e: serde_json::Error| io::Error::new(io::ErrorKind::InvalidData, e);
    for (name, points) in series {
        for point in points {
            let line =
                serde_json::to_string(&CurveLine::from_parts(name, point)).map_err(to_io_err)?;
            writeln!(out, "{line}")?;
        }
    }
    Ok(())
}

/// Parses a `curves.jsonl` file back into a series map. Errors carry
/// the path and 1-based line number of the offending line.
pub fn read_curves_jsonl(path: &Path) -> io::Result<BTreeMap<String, Vec<CurvePoint>>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| crate::rundir::annotate(e, "cannot read", path))?;
    let mut series: BTreeMap<String, Vec<CurvePoint>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed: CurveLine = serde_json::from_str(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), lineno + 1),
            )
        })?;
        let (name, point) = parsed.into_parts();
        series.entry(name).or_default().push(point);
    }
    Ok(series)
}

/// The thread-local recording context installed by [`enter_series`].
struct SeriesContext {
    name: Arc<str>,
    sinks: Arc<Vec<Arc<dyn CurveSink>>>,
}

thread_local! {
    static CURVE_CONTEXT: RefCell<Option<SeriesContext>> = const { RefCell::new(None) };
}

/// RAII guard that keeps a curve-recording context installed on one
/// thread; recording reverts to the previous context (usually none)
/// when it drops.
pub struct CurveSeriesGuard {
    prev: Option<SeriesContext>,
}

impl Drop for CurveSeriesGuard {
    fn drop(&mut self) {
        CURVE_CONTEXT.with(|slot| {
            *slot.borrow_mut() = self.prev.take();
        });
    }
}

/// Installs a recording context on the current thread: checkpoints
/// emitted while the guard lives are tagged with `series` and fanned
/// out to every sink. Install it on the same thread that runs the
/// experiment driver (next to the [`crate::CounterScope`] guard), so
/// the query totals read at each checkpoint are the experiment's own.
pub fn enter_series(series: &str, sinks: Arc<Vec<Arc<dyn CurveSink>>>) -> CurveSeriesGuard {
    CURVE_CONTEXT.with(|slot| {
        let prev = slot.borrow_mut().replace(SeriesContext {
            name: Arc::from(series),
            sinks,
        });
        CurveSeriesGuard { prev }
    })
}

/// Whether a recording context is installed on this thread. Training
/// loops gate any checkpoint-only work (extra accuracy scans, margin
/// tracking) behind this — one thread-local read when disabled.
pub fn recording() -> bool {
    CURVE_CONTEXT.with(|slot| slot.borrow().is_some())
}

/// The shared log-spaced checkpoint schedule: record at every
/// power-of-two iteration and at the final one. `iteration` is
/// 1-based; 0 never checkpoints.
pub fn should_checkpoint(iteration: u64, last: u64) -> bool {
    iteration > 0 && (iteration == last || iteration.is_power_of_two())
}

/// Derives `(queries, raw_reads)` from scope counter totals.
///
/// `oracle.query.logical` / `oracle.query.raw_reads` (the unreliable
/// oracle's budget accounting) are authoritative when present; the
/// plain `FunctionOracle` counters (`oracle.example_queries` +
/// `oracle.membership_queries`) are the base otherwise — when both
/// exist the plain counters double-count queries the unreliable
/// wrapper already metered, so they are ignored. SAT/AppSAT oracle
/// traffic (`locking.*.dips`, `locking.appsat.random_queries`) is
/// metered at the attack layer and added on top of either base.
pub fn query_budget(totals: &BTreeMap<String, u64>) -> (u64, u64) {
    let get = |name: &str| totals.get(name).copied().unwrap_or(0);
    let logical = get("oracle.query.logical");
    let raw = get("oracle.query.raw_reads");
    let base = if logical > 0 {
        logical
    } else {
        get("oracle.example_queries") + get("oracle.membership_queries")
    };
    let attack = get("locking.sat_attack.dips")
        + get("locking.appsat.dips")
        + get("locking.appsat.random_queries");
    let queries = base + attack;
    let raw_reads = if raw > 0 { raw + attack } else { queries };
    (queries, raw_reads)
}

/// Emits one checkpoint to the sinks of the context installed on this
/// thread. No-op (one thread-local read) when none is installed.
///
/// Query counts are read non-destructively from the active
/// [`crate::CounterScope`] at call time, so they are exact up to the
/// increment preceding the call.
pub fn checkpoint(label: &str, iteration: u64, train_acc: f64, holdout_acc: Option<f64>) {
    CURVE_CONTEXT.with(|slot| {
        let slot = slot.borrow();
        let Some(context) = slot.as_ref() else {
            return;
        };
        let counters = scope_counter_totals(CURVE_COUNTER_PREFIXES).unwrap_or_default();
        let (queries, raw_reads) = query_budget(&counters);
        let point = CurvePoint {
            label: label.to_string(),
            iteration,
            queries,
            raw_reads,
            train_acc,
            holdout_acc,
            counters,
        };
        for sink in context.sinks.iter() {
            sink.on_point(&context.name, &point);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterScope;

    fn sinks_of(recorder: &Arc<CurveRecorder>) -> Arc<Vec<Arc<dyn CurveSink>>> {
        Arc::new(vec![Arc::clone(recorder) as Arc<dyn CurveSink>])
    }

    #[test]
    fn checkpoint_without_context_is_a_no_op() {
        assert!(!recording());
        checkpoint("orphan", 1, 0.5, None);
        // Nothing to assert beyond "did not panic": no context, no sink.
        assert!(!recording());
    }

    #[test]
    fn checkpoints_carry_exact_scope_query_totals() {
        let recorder = Arc::new(CurveRecorder::new());
        let scope = CounterScope::new();
        {
            let _counters = scope.enter();
            let _curves = enter_series("test_curves.exp_a", sinks_of(&recorder));
            assert!(recording());
            crate::counter_handle("oracle.example_queries").add(40);
            crate::counter_handle("oracle.membership_queries").add(2);
            crate::counter_handle("learn.perceptron.epochs").add(7); // filtered out
            checkpoint("perceptron", 1, 0.75, None);
            crate::counter_handle("oracle.example_queries").add(60);
            checkpoint("perceptron", 2, 0.9, Some(0.85));
        }
        assert!(!recording());
        let series = recorder.series();
        let points = &series["test_curves.exp_a"];
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].queries, 42);
        assert_eq!(points[0].raw_reads, 42);
        assert_eq!(points[0].train_acc, 0.75);
        assert_eq!(points[0].holdout_acc, None);
        assert!(!points[0].counters.contains_key("learn.perceptron.epochs"));
        assert_eq!(points[1].queries, 102);
        assert_eq!(points[1].iteration, 2);
        assert_eq!(points[1].holdout_acc, Some(0.85));
    }

    #[test]
    fn unreliable_budget_counters_take_precedence() {
        // Under UnreliableOracle wrapping, the inner FunctionOracle
        // still bumps example/membership counters — the logical budget
        // must not double-count them.
        let mut totals = BTreeMap::new();
        totals.insert("oracle.query.logical".to_string(), 100);
        totals.insert("oracle.query.raw_reads".to_string(), 130);
        totals.insert("oracle.example_queries".to_string(), 100);
        assert_eq!(query_budget(&totals), (100, 130));

        let mut plain = BTreeMap::new();
        plain.insert("oracle.example_queries".to_string(), 64);
        plain.insert("oracle.membership_queries".to_string(), 8);
        assert_eq!(query_budget(&plain), (72, 72));

        let mut attack = BTreeMap::new();
        attack.insert("locking.sat_attack.dips".to_string(), 5);
        assert_eq!(query_budget(&attack), (5, 5));

        let mut appsat = BTreeMap::new();
        appsat.insert("oracle.query.logical".to_string(), 10);
        appsat.insert("oracle.query.raw_reads".to_string(), 12);
        appsat.insert("locking.appsat.dips".to_string(), 3);
        appsat.insert("locking.appsat.random_queries".to_string(), 32);
        assert_eq!(query_budget(&appsat), (45, 47));
    }

    #[test]
    fn series_contexts_nest_and_restore() {
        let outer = Arc::new(CurveRecorder::new());
        let inner = Arc::new(CurveRecorder::new());
        let _outer_guard = enter_series("test_curves.outer", sinks_of(&outer));
        checkpoint("a", 1, 0.1, None);
        {
            let _inner_guard = enter_series("test_curves.inner", sinks_of(&inner));
            checkpoint("b", 1, 0.2, None);
        }
        checkpoint("c", 2, 0.3, None);
        drop(_outer_guard);
        assert_eq!(outer.series()["test_curves.outer"].len(), 2);
        assert_eq!(inner.series()["test_curves.inner"].len(), 1);
    }

    #[test]
    fn log_spaced_schedule_hits_powers_of_two_and_the_end() {
        let hits: Vec<u64> = (1..=20).filter(|&i| should_checkpoint(i, 20)).collect();
        assert_eq!(hits, vec![1, 2, 4, 8, 16, 20]);
        assert!(!should_checkpoint(0, 20));
        assert!(should_checkpoint(1, 1));
        // A power-of-two final iteration is not duplicated by the
        // schedule itself (callers emit each iteration at most once).
        assert!(should_checkpoint(16, 16));
    }

    #[test]
    fn curves_jsonl_round_trips() {
        let mut series: BTreeMap<String, Vec<CurvePoint>> = BTreeMap::new();
        series.insert(
            "exp_b".to_string(),
            vec![CurvePoint {
                label: "logistic".to_string(),
                iteration: 4,
                queries: 2000,
                raw_reads: 2600,
                train_acc: 0.875,
                holdout_acc: Some(0.75),
                counters: [("oracle.query.logical".to_string(), 2000)]
                    .into_iter()
                    .collect(),
            }],
        );
        series.insert(
            "exp_a".to_string(),
            vec![CurvePoint {
                label: "perceptron".to_string(),
                iteration: 1,
                queries: 64,
                raw_reads: 64,
                train_acc: 0.5,
                holdout_acc: None,
                counters: BTreeMap::new(),
            }],
        );
        let mut buf = Vec::new();
        write_curves_jsonl(&mut buf, &series).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // Series in name order: exp_a's line first.
        let first = text.lines().next().unwrap();
        assert!(first.contains("exp_a"), "got: {first}");

        let dir = std::env::temp_dir().join(format!("mlam_curves_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CURVES_FILE);
        std::fs::write(&path, &buf).unwrap();
        let loaded = read_curves_jsonl(&path).unwrap();
        assert_eq!(loaded, series);

        // Writing what was read reproduces the bytes exactly.
        let mut again = Vec::new();
        write_curves_jsonl(&mut again, &loaded).unwrap();
        assert_eq!(again, buf);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_curve_lines_report_path_and_line() {
        let dir = std::env::temp_dir().join(format!("mlam_curves_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CURVES_FILE);
        std::fs::write(&path, "{\"not\": \"a curve line\"}\n").unwrap();
        let err = read_curves_jsonl(&path).expect_err("must reject");
        let msg = err.to_string();
        assert!(msg.contains("curves.jsonl:1"), "got: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
