//! The global event recorder and its sinks.
//!
//! Span guards emit [`Event`]s here. Two sinks ship with the crate:
//!
//! - a stderr sink, installed automatically when the `MLAM_LOG`
//!   environment variable names a level at or above `info`;
//! - [`JsonlSink`], which appends one JSON object per event to a file
//!   and is installed explicitly (the bench binaries do this under
//!   `--json`).
//!
//! Nothing in this module ever writes to stdout.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Verbosity levels for the `MLAM_LOG` stderr sink, coarsest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No stderr logging at all.
    Off,
    /// Failures only.
    Error,
    /// Progress notes.
    Info,
    /// Per-span detail.
    Debug,
    /// Everything, including span attributes.
    Trace,
}

impl Level {
    fn parse(raw: &str) -> Level {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => Level::Off,
            "error" => Level::Error,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            other => {
                eprintln!("mlam-telemetry: unknown MLAM_LOG level '{other}', using info");
                Level::Info
            }
        }
    }
}

/// The stderr verbosity selected by `MLAM_LOG`, read once per process.
pub fn stderr_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("MLAM_LOG")
            .map(|v| Level::parse(&v))
            .unwrap_or(Level::Off)
    })
}

/// What happened, as recorded by a span guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span guard was created.
    SpanStart,
    /// A span guard was dropped.
    SpanEnd,
}

/// One telemetry event. `elapsed_ns` is present on `SpanEnd` only;
/// `ts_ns` is nanoseconds since the recorder was first touched in this
/// process (a monotonic clock, not wall time).
///
/// `id` is process-unique per span, and `parent_id` names the
/// enclosing span on the same thread (if any), so post-hoc tools can
/// reconstruct the full span tree from an `events.jsonl` stream.
/// `tid` is a small process-unique id of the thread the span started
/// on (not the OS thread id).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Start or end.
    pub kind: EventKind,
    /// The span's name.
    pub name: String,
    /// Process-unique id of the span this event belongs to (never 0).
    pub id: u64,
    /// Id of the enclosing span on the starting thread, if any.
    pub parent_id: Option<u64>,
    /// Process-unique id of the thread the span started on.
    pub tid: u64,
    /// Nesting depth of the span on its starting thread.
    pub depth: usize,
    /// Nanoseconds since the recorder was first touched (monotonic).
    pub ts_ns: u64,
    /// Span duration in nanoseconds; `SpanEnd` only.
    pub elapsed_ns: Option<u64>,
    /// Key/value attributes attached to the span.
    pub attrs: Vec<(String, String)>,
}

/// A destination for telemetry events. Implementations must be
/// thread-safe; `record` is called under the recorder lock.
pub trait Sink: Send {
    /// Receives one event.
    fn record(&mut self, event: &Event);
}

struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, event: &Event) {
        let indent = "  ".repeat(event.depth);
        let attrs = if event.attrs.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = event
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!(" [{}]", parts.join(" "))
        };
        match event.kind {
            EventKind::SpanStart => {
                eprintln!("mlam: {indent}> {}{attrs}", event.name);
            }
            EventKind::SpanEnd => {
                let secs = event.elapsed_ns.unwrap_or(0) as f64 / 1e9;
                eprintln!("mlam: {indent}< {} ({secs:.3}s){attrs}", event.name);
            }
        }
    }
}

/// Appends one compact JSON object per event to a file.
pub struct JsonlSink {
    file: std::fs::File,
}

impl JsonlSink {
    /// Opens (truncating) `path` for event output.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            file: std::fs::File::create(path)?,
        })
    }

    /// Opens `path` for event output, keeping existing content — used
    /// when resuming an interrupted run whose `events.jsonl` already
    /// holds the earlier attempt's events.
    pub fn append(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if let Ok(json) = serde_json::to_string(event) {
            // Telemetry must never take the pipeline down: IO errors
            // are dropped, not propagated.
            let _ = writeln!(self.file, "{json}");
        }
    }
}

struct Recorder {
    epoch: Instant,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let sinks: Vec<Box<dyn Sink>> = if stderr_level() >= Level::Info {
            vec![Box::new(StderrSink)]
        } else {
            Vec::new()
        };
        Recorder {
            epoch: Instant::now(),
            sinks: Mutex::new(sinks),
        }
    })
}

/// Installs an additional sink (e.g. a [`JsonlSink`]) for the rest of
/// the process lifetime.
pub fn add_sink(sink: Box<dyn Sink>) {
    recorder()
        .sinks
        .lock()
        .expect("recorder poisoned")
        .push(sink);
}

/// Nanoseconds since the recorder epoch (first telemetry touch).
pub(crate) fn now_ns() -> u64 {
    recorder().epoch.elapsed().as_nanos() as u64
}

pub(crate) fn dispatch(event: &Event) {
    let mut sinks = recorder().sinks.lock().expect("recorder poisoned");
    for sink in sinks.iter_mut() {
        sink.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    struct ChannelSink(mpsc::Sender<Event>);

    impl Sink for ChannelSink {
        fn record(&mut self, event: &Event) {
            let _ = self.0.send(event.clone());
        }
    }

    #[test]
    fn installed_sinks_receive_span_events() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _span = crate::span("recorder-test");
        }
        let events: Vec<Event> = rx.try_iter().collect();
        let start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == "recorder-test")
            .expect("start event");
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == "recorder-test")
            .expect("end event");
        assert!(end.elapsed_ns.is_some());
        assert!(start.elapsed_ns.is_none());
        assert!(end.ts_ns >= start.ts_ns, "recorder clock is monotonic");
        assert_ne!(start.id, 0, "spans have non-zero ids");
        assert_eq!(start.id, end.id, "start/end share the span id");
        assert_eq!(start.tid, end.tid, "start/end share the thread id");
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("INFO"), Level::Info);
        assert_eq!(Level::parse(" debug "), Level::Debug);
        assert_eq!(Level::parse("trace"), Level::Trace);
        assert!(Level::Debug > Level::Info);
    }
}
