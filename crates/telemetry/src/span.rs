//! RAII spans: scoped, monotonic wall-clock timing with real nesting.
//!
//! ```
//! let _guard = mlam_telemetry::span("table1");
//! // ... work ...
//! // on drop: elapsed time recorded, end event emitted
//! ```
//!
//! Each span also feeds the `span.<name>.micros` histogram, so repeated
//! spans (e.g. one per SAT-attack iteration) aggregate for free.
//!
//! # Span identity and the tree
//!
//! Every span gets a process-unique `u64` id; a thread-local stack
//! supplies the id of the enclosing span, so every [`Event`] carries
//! `(id, parent_id, tid)` and post-hoc tools (`mlam-trace`) can rebuild
//! the exact span tree from an `events.jsonl` stream — no guessing from
//! depth counters.
//!
//! # Deferred start events
//!
//! [`Span::attr`] chains *after* construction, so the `SpanStart` event
//! is not dispatched inside [`span`]: it is deferred until the span is
//! first *used* — when a child span starts underneath it, or at drop —
//! by which point the builder chain has completed and the start event
//! carries every attribute. The deferred event keeps the timestamp
//! captured at construction, so per-thread event streams stay in
//! correct nesting order with monotone timestamps.

use crate::recorder::{self, Event, EventKind};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide span id allocator; 0 is reserved as "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Process-wide thread id allocator for telemetry (small, dense ids).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Per-thread bookkeeping for one live span. Attributes are mirrored
/// here so that a *descendant* span (or the drop path) can dispatch
/// this span's deferred start event with the attrs that were set by
/// the time it was first used.
struct Frame {
    id: u64,
    parent_id: Option<u64>,
    name: String,
    depth: usize,
    start_ts_ns: u64,
    attrs: Vec<(String, String)>,
    started: bool,
}

impl Frame {
    fn start_event(&self, tid: u64) -> Event {
        Event {
            kind: EventKind::SpanStart,
            name: self.name.clone(),
            id: self.id,
            parent_id: self.parent_id,
            tid,
            depth: self.depth,
            ts_ns: self.start_ts_ns,
            elapsed_ns: None,
            attrs: self.attrs.clone(),
        }
    }
}

/// Dispatches the pending start events of every not-yet-started frame,
/// outermost first, marking them started.
fn flush_pending_starts(stack: &mut [Frame], tid: u64) {
    for frame in stack.iter_mut() {
        if !frame.started {
            frame.started = true;
            recorder::dispatch(&frame.start_event(tid));
        }
    }
}

/// Starts a named span; timing stops when the returned guard drops.
pub fn span(name: impl Into<String>) -> Span {
    Span::new(name.into())
}

/// A live span. Construct via [`span`]; attach context with
/// [`Span::attr`].
pub struct Span {
    id: u64,
    parent_id: Option<u64>,
    tid: u64,
    name: String,
    start: Instant,
    depth: usize,
    attrs: Vec<(String, String)>,
}

impl Span {
    fn new(name: String) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let tid = current_tid();
        let start_ts_ns = recorder::now_ns();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // A child is the first "use" of its ancestors: their start
            // events (with completed attr chains) go out now, in stack
            // order, before this span can emit anything.
            flush_pending_starts(&mut stack, tid);
            let parent_id = stack.last().map(|f| f.id);
            // Depth comes from the enclosing frame, not the stack
            // height: a context frame installed by [`enter_context`]
            // carries its original depth, so spans created on worker
            // threads report the same depth as they would inline.
            let depth = stack.last().map(|f| f.depth + 1).unwrap_or(0);
            stack.push(Frame {
                id,
                parent_id,
                name: name.clone(),
                depth,
                start_ts_ns,
                attrs: Vec::new(),
                started: false,
            });
            Span {
                id,
                parent_id,
                tid,
                name,
                start: Instant::now(),
                depth,
                attrs: Vec::new(),
            }
        })
    }

    /// Attaches a key/value shown on this span's events. Attributes
    /// set before the span is first used (child span or drop) appear
    /// on the start event too; later ones ride on the end event only.
    pub fn attr(mut self, key: impl Into<String>, value: impl std::fmt::Display) -> Span {
        let key = key.into();
        let value = value.to_string();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(frame) = stack.iter_mut().find(|f| f.id == self.id) {
                if !frame.started {
                    frame.attrs.push((key.clone(), value.clone()));
                }
            }
        });
        self.attrs.push((key, value));
        self
    }

    /// This span's process-unique id (never 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the span this one nests inside, if any.
    pub fn parent_id(&self) -> Option<u64> {
        self.parent_id
    }

    /// Time since the span started (monotonic).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A portable handle to the innermost live span of some thread, used
/// to parent spans created on `mlam-par` worker threads under the
/// span that was live where the parallel call was submitted.
#[derive(Clone, Debug)]
pub struct SpanContext {
    parent_id: u64,
    depth: usize,
    name: String,
}

/// Captures the current thread's innermost live span as a portable
/// [`SpanContext`], or `None` when no span is live.
///
/// Capturing counts as a *use* of the live spans: their deferred start
/// events are flushed first, so a child span started on another thread
/// can never be dispatched before its parent's start event.
pub fn current_context() -> Option<SpanContext> {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        flush_pending_starts(&mut stack, current_tid());
        stack.last().map(|f| SpanContext {
            parent_id: f.id,
            depth: f.depth,
            name: f.name.clone(),
        })
    })
}

/// Re-installs a captured [`SpanContext`] on the current (worker)
/// thread: until the returned guard drops, spans started here nest
/// under the captured span exactly as if they had been started on the
/// capturing thread.
pub fn enter_context(ctx: SpanContext) -> SpanContextGuard {
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            id: ctx.parent_id,
            parent_id: None,
            name: ctx.name,
            depth: ctx.depth,
            start_ts_ns: 0,
            attrs: Vec::new(),
            // The original frame's start event was flushed when the
            // context was captured; this placeholder must never emit
            // another one.
            started: true,
        });
    });
    SpanContextGuard { id: ctx.parent_id }
}

/// RAII guard that keeps a re-installed [`SpanContext`] live on one
/// thread; dropping it removes the context frame again.
pub struct SpanContextGuard {
    id: u64,
}

impl Drop for SpanContextGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|f| f.id == self.id) {
                stack.truncate(pos);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        crate::metrics::histogram_handle(&format!("span.{}.micros", self.name))
            .observe(elapsed.as_micros() as u64);
        // Retire this span's frame. Only the innermost frame can still
        // be unstarted (ancestors were flushed when it was pushed), so
        // a pending start goes out here, right before the end event.
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|f| f.id == self.id) {
                let frame = stack.remove(pos);
                if !frame.started {
                    recorder::dispatch(&frame.start_event(self.tid));
                }
            }
        });
        recorder::dispatch(&Event {
            kind: EventKind::SpanEnd,
            name: self.name.clone(),
            id: self.id,
            parent_id: self.parent_id,
            tid: self.tid,
            depth: self.depth,
            ts_ns: recorder::now_ns(),
            elapsed_ns: Some(elapsed.as_nanos() as u64),
            attrs: self.attrs.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{add_sink, Sink};
    use std::sync::mpsc;

    struct ChannelSink(mpsc::Sender<Event>);

    impl Sink for ChannelSink {
        fn record(&mut self, event: &Event) {
            let _ = self.0.send(event.clone());
        }
    }

    #[test]
    fn elapsed_is_monotone() {
        let span = span("span-monotone");
        let a = span.elapsed();
        let b = span.elapsed();
        assert!(b >= a);
        std::thread::sleep(Duration::from_millis(2));
        assert!(span.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn nesting_depth_is_tracked() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _outer = span("span-outer");
            {
                let _inner = span("span-inner");
            }
        }
        let events: Vec<Event> = rx.try_iter().collect();
        let outer = events
            .iter()
            .find(|e| e.name == "span-outer" && e.kind == EventKind::SpanStart)
            .expect("outer start");
        let inner = events
            .iter()
            .find(|e| e.name == "span-inner" && e.kind == EventKind::SpanStart)
            .expect("inner start");
        assert_eq!(inner.depth, outer.depth + 1);
        // End events restore and report the same depth as their start.
        let inner_end = events
            .iter()
            .find(|e| e.name == "span-inner" && e.kind == EventKind::SpanEnd)
            .expect("inner end");
        assert_eq!(inner_end.depth, inner.depth);
        // The inner span ends before the outer one.
        let outer_end_idx = events
            .iter()
            .position(|e| e.name == "span-outer" && e.kind == EventKind::SpanEnd)
            .expect("outer end");
        let inner_end_idx = events
            .iter()
            .position(|e| e.name == "span-inner" && e.kind == EventKind::SpanEnd)
            .expect("inner end idx");
        assert!(inner_end_idx < outer_end_idx);
        // And the start events come out outermost first.
        let outer_start_idx = events.iter().position(|e| std::ptr::eq(e, outer)).unwrap();
        let inner_start_idx = events.iter().position(|e| std::ptr::eq(e, inner)).unwrap();
        assert!(outer_start_idx < inner_start_idx);
    }

    #[test]
    fn span_tree_ids_link_children_to_parents() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let outer = span("span-tree-outer");
            let outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span("span-tree-inner");
                assert_eq!(inner.parent_id(), Some(outer_id));
                assert_ne!(inner.id(), outer_id);
            }
            {
                let sibling = span("span-tree-sibling");
                assert_eq!(sibling.parent_id(), Some(outer_id));
            }
        }
        let events: Vec<Event> = rx.try_iter().collect();
        let outer_start = events
            .iter()
            .find(|e| e.name == "span-tree-outer" && e.kind == EventKind::SpanStart)
            .expect("outer start");
        assert_eq!(outer_start.parent_id, None);
        for name in ["span-tree-inner", "span-tree-sibling"] {
            for kind in [EventKind::SpanStart, EventKind::SpanEnd] {
                let event = events
                    .iter()
                    .find(|e| e.name == name && e.kind == kind)
                    .expect("child event");
                assert_eq!(event.parent_id, Some(outer_start.id), "{name} parent");
                assert_eq!(event.tid, outer_start.tid, "{name} tid");
            }
        }
    }

    #[test]
    fn span_ids_are_distinct_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let s = span("span-threaded");
                    (s.id(), current_tid())
                })
            })
            .collect();
        let mut ids = Vec::new();
        let mut tids = Vec::new();
        for h in handles {
            let (id, tid) = h.join().unwrap();
            ids.push(id);
            tids.push(tid);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids are process-unique");
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "telemetry thread ids are per-thread");
    }

    #[test]
    fn contexts_parent_spans_across_threads() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        let outer = span("span-ctx-outer");
        let outer_id = outer.id();
        let ctx = current_context().expect("a span is live");
        std::thread::spawn(move || {
            let _guard = enter_context(ctx);
            let child = span("span-ctx-child");
            assert_eq!(child.parent_id(), Some(outer_id));
        })
        .join()
        .unwrap();
        // After the worker's guard dropped, new spans there would be
        // roots again; on this thread nesting is untouched.
        let sibling = span("span-ctx-sibling");
        assert_eq!(sibling.parent_id(), Some(outer_id));
        drop(sibling);
        drop(outer);
        let events: Vec<Event> = rx.try_iter().collect();
        let outer_start_idx = events
            .iter()
            .position(|e| e.name == "span-ctx-outer" && e.kind == EventKind::SpanStart)
            .expect("outer start flushed by capture");
        let child_start = events
            .iter()
            .find(|e| e.name == "span-ctx-child" && e.kind == EventKind::SpanStart)
            .expect("child start");
        assert_eq!(child_start.parent_id, Some(outer_id));
        assert_eq!(child_start.depth, events[outer_start_idx].depth + 1);
        let child_start_idx = events
            .iter()
            .position(|e| std::ptr::eq(e, child_start))
            .unwrap();
        assert!(
            outer_start_idx < child_start_idx,
            "parent start must be dispatched before the cross-thread child's"
        );
    }

    #[test]
    fn context_without_live_span_is_none() {
        std::thread::spawn(|| assert!(current_context().is_none()))
            .join()
            .unwrap();
    }

    #[test]
    fn span_durations_feed_a_histogram() {
        {
            let _span = span("span-histo");
        }
        let snap = crate::metrics::histogram_handle("span.span-histo.micros").snapshot();
        assert!(snap.count >= 1);
    }

    #[test]
    fn attrs_ride_along() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _span = span("span-attrs").attr("n", 32).attr("k", "4");
        }
        let end = rx
            .try_iter()
            .find(|e| e.name == "span-attrs" && e.kind == EventKind::SpanEnd)
            .expect("end event");
        assert!(end.attrs.contains(&("n".to_string(), "32".to_string())));
        assert!(end.attrs.contains(&("k".to_string(), "4".to_string())));
    }

    /// Regression test: `SpanStart` used to be dispatched inside
    /// `Span::new`, *before* the `.attr()` chain ran, so start events
    /// never carried attributes. The start event is now deferred until
    /// first use, so it must see the constructor attrs — both when the
    /// first use is a child span and when it is the drop itself.
    #[test]
    fn start_events_carry_constructor_attrs() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _outer = span("span-attr-order").attr("n", 64).attr("mode", "quick");
            let _child = span("span-attr-order-child");
        }
        {
            let _leaf = span("span-attr-order-leaf").attr("k", 8);
        }
        let events: Vec<Event> = rx.try_iter().collect();
        let outer_start = events
            .iter()
            .find(|e| e.name == "span-attr-order" && e.kind == EventKind::SpanStart)
            .expect("outer start");
        assert!(
            outer_start
                .attrs
                .contains(&("n".to_string(), "64".to_string())),
            "start event lost its attrs: {:?}",
            outer_start.attrs
        );
        assert!(outer_start
            .attrs
            .contains(&("mode".to_string(), "quick".to_string())));
        // The parent's start must still be dispatched before the child's.
        let outer_idx = events
            .iter()
            .position(|e| e.name == "span-attr-order" && e.kind == EventKind::SpanStart)
            .unwrap();
        let child_idx = events
            .iter()
            .position(|e| e.name == "span-attr-order-child" && e.kind == EventKind::SpanStart)
            .unwrap();
        assert!(outer_idx < child_idx);
        let leaf_start = events
            .iter()
            .find(|e| e.name == "span-attr-order-leaf" && e.kind == EventKind::SpanStart)
            .expect("leaf start");
        assert!(leaf_start
            .attrs
            .contains(&("k".to_string(), "8".to_string())));
    }

    /// The deferred start event keeps the construction-time timestamp,
    /// so per-thread streams stay timestamp-monotone in dispatch order.
    #[test]
    fn deferred_start_keeps_original_timestamp() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _span = span("span-deferred-ts");
            std::thread::sleep(Duration::from_millis(5));
        }
        let events: Vec<Event> = rx
            .try_iter()
            .filter(|e| e.name == "span-deferred-ts")
            .collect();
        let start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart)
            .expect("start");
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd)
            .expect("end");
        assert!(
            end.ts_ns.saturating_sub(start.ts_ns) >= 4_000_000,
            "start ts must predate end ts by the sleep: start={} end={}",
            start.ts_ns,
            end.ts_ns
        );
    }
}
