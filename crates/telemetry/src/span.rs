//! RAII spans: scoped, monotonic wall-clock timing with nesting.
//!
//! ```
//! let _guard = mlam_telemetry::span("table1");
//! // ... work ...
//! // on drop: elapsed time recorded, end event emitted
//! ```
//!
//! Each span also feeds the `span.<name>.micros` histogram, so repeated
//! spans (e.g. one per SAT-attack iteration) aggregate for free.

use crate::recorder::{self, Event, EventKind};
use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Starts a named span; timing stops when the returned guard drops.
pub fn span(name: impl Into<String>) -> Span {
    Span::new(name.into(), Vec::new())
}

/// A live span. Construct via [`span`]; attach context with
/// [`Span::attr`].
pub struct Span {
    name: String,
    start: Instant,
    depth: usize,
    attrs: Vec<(String, String)>,
}

impl Span {
    fn new(name: String, attrs: Vec<(String, String)>) -> Span {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let span = Span {
            name,
            start: Instant::now(),
            depth,
            attrs,
        };
        recorder::dispatch(&span.event(EventKind::SpanStart, None));
        span
    }

    /// Attaches a key/value shown on this span's events.
    pub fn attr(mut self, key: impl Into<String>, value: impl std::fmt::Display) -> Span {
        self.attrs.push((key.into(), value.to_string()));
        self
    }

    /// Time since the span started (monotonic).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn event(&self, kind: EventKind, elapsed_ns: Option<u64>) -> Event {
        Event {
            kind,
            name: self.name.clone(),
            depth: self.depth,
            ts_ns: recorder::now_ns(),
            elapsed_ns,
            attrs: self.attrs.clone(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::metrics::histogram_handle(&format!("span.{}.micros", self.name))
            .observe(elapsed.as_micros() as u64);
        recorder::dispatch(&self.event(EventKind::SpanEnd, Some(elapsed.as_nanos() as u64)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{add_sink, Sink};
    use std::sync::mpsc;

    struct ChannelSink(mpsc::Sender<Event>);

    impl Sink for ChannelSink {
        fn record(&mut self, event: &Event) {
            let _ = self.0.send(event.clone());
        }
    }

    #[test]
    fn elapsed_is_monotone() {
        let span = span("span-monotone");
        let a = span.elapsed();
        let b = span.elapsed();
        assert!(b >= a);
        std::thread::sleep(Duration::from_millis(2));
        assert!(span.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn nesting_depth_is_tracked() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _outer = span("span-outer");
            {
                let _inner = span("span-inner");
            }
        }
        let events: Vec<Event> = rx.try_iter().collect();
        let outer = events
            .iter()
            .find(|e| e.name == "span-outer" && e.kind == EventKind::SpanStart)
            .expect("outer start");
        let inner = events
            .iter()
            .find(|e| e.name == "span-inner" && e.kind == EventKind::SpanStart)
            .expect("inner start");
        assert_eq!(inner.depth, outer.depth + 1);
        // End events restore and report the same depth as their start.
        let inner_end = events
            .iter()
            .find(|e| e.name == "span-inner" && e.kind == EventKind::SpanEnd)
            .expect("inner end");
        assert_eq!(inner_end.depth, inner.depth);
        // The inner span ends before the outer one.
        let outer_end_idx = events
            .iter()
            .position(|e| e.name == "span-outer" && e.kind == EventKind::SpanEnd)
            .expect("outer end");
        let inner_end_idx = events
            .iter()
            .position(|e| e.name == "span-inner" && e.kind == EventKind::SpanEnd)
            .expect("inner end idx");
        assert!(inner_end_idx < outer_end_idx);
    }

    #[test]
    fn span_durations_feed_a_histogram() {
        {
            let _span = span("span-histo");
        }
        let snap = crate::metrics::histogram_handle("span.span-histo.micros").snapshot();
        assert!(snap.count >= 1);
    }

    #[test]
    fn attrs_ride_along() {
        let (tx, rx) = mpsc::channel();
        add_sink(Box::new(ChannelSink(tx)));
        {
            let _span = span("span-attrs").attr("n", 32).attr("k", "4");
        }
        let end = rx
            .try_iter()
            .find(|e| e.name == "span-attrs" && e.kind == EventKind::SpanEnd)
            .expect("end event");
        assert!(end.attrs.contains(&("n".to_string(), "32".to_string())));
        assert!(end.attrs.contains(&("k".to_string(), "4".to_string())));
    }
}
