//! Run-directory hygiene for `--json <dir>` output.
//!
//! A [`RunDir`] is the directory a reproduction run writes its
//! `manifest.json`, `metrics.jsonl`, `events.jsonl` and per-experiment
//! JSON files into. Creating one:
//!
//! - creates the directory **recursively** (`a/b/c` works from scratch);
//! - refuses to silently clobber a completed run — if the directory
//!   already holds a `manifest.json`, creation fails unless `force` is
//!   set (the binaries expose this as `--force`);
//! - reports every I/O error with the offending path attached.

use std::io;
use std::path::{Path, PathBuf};

/// The file whose presence marks a directory as holding a finished run.
pub const MANIFEST_FILE: &str = "manifest.json";

/// A prepared run output directory. See the module docs for the
/// guarantees [`RunDir::create`] makes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunDir {
    path: PathBuf,
}

impl RunDir {
    /// Creates (recursively) and claims `path` for a new run.
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if the directory
    /// already contains a `manifest.json` and `force` is false.
    pub fn create(path: impl Into<PathBuf>, force: bool) -> io::Result<RunDir> {
        let path = path.into();
        std::fs::create_dir_all(&path)
            .map_err(|e| annotate(e, "cannot create run directory", &path))?;
        let manifest = path.join(MANIFEST_FILE);
        if !force && manifest.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "run directory {} already contains {MANIFEST_FILE}; \
                     refusing to overwrite an existing run (pass --force to allow)",
                    path.display()
                ),
            ));
        }
        Ok(RunDir { path })
    }

    /// Reopens an existing run directory to continue an interrupted
    /// run.
    ///
    /// Unlike [`RunDir::create`], an existing `manifest.json` is fine —
    /// resuming a finished run simply finds every experiment complete.
    /// A *missing* directory is refused instead, because there is
    /// nothing to resume in it.
    pub fn resume(path: impl Into<PathBuf>) -> io::Result<RunDir> {
        let path = path.into();
        if !path.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "cannot resume {}: not a run directory (start a fresh run with --json)",
                    path.display()
                ),
            ));
        }
        Ok(RunDir { path })
    }

    /// The directory this run writes into.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The path of a file inside the run directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Creates (truncating) a file inside the run directory, with the
    /// full path attached to any error.
    pub fn create_file(&self, name: &str) -> io::Result<std::fs::File> {
        let path = self.file(name);
        std::fs::File::create(&path).map_err(|e| annotate(e, "cannot create", &path))
    }

    /// Writes `contents` to a file inside the run directory, with the
    /// full path attached to any error.
    pub fn write_file(&self, name: &str, contents: impl AsRef<[u8]>) -> io::Result<()> {
        let path = self.file(name);
        std::fs::write(&path, contents).map_err(|e| annotate(e, "cannot write", &path))
    }
}

/// Attaches context and the offending path to an I/O error.
pub fn annotate(error: io::Error, what: &str, path: &Path) -> io::Error {
    io::Error::new(error.kind(), format!("{what} {}: {error}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlam_rundir_{label}_{}", std::process::id()))
    }

    #[test]
    fn creates_directories_recursively() {
        let base = scratch("recursive");
        let _ = std::fs::remove_dir_all(&base);
        let nested = base.join("a/b/c");
        let dir = RunDir::create(&nested, false).expect("recursive create");
        assert!(nested.is_dir());
        assert_eq!(dir.path(), nested.as_path());
        assert_eq!(dir.file("x.json"), nested.join("x.json"));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn refuses_to_clobber_a_finished_run_without_force() {
        let base = scratch("clobber");
        let _ = std::fs::remove_dir_all(&base);
        let dir = RunDir::create(&base, false).expect("first create");
        dir.write_file(MANIFEST_FILE, "{}\n")
            .expect("write manifest");
        let err = RunDir::create(&base, false).expect_err("must refuse clobber");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let msg = err.to_string();
        assert!(
            msg.contains(base.to_string_lossy().as_ref()),
            "error names the path: {msg}"
        );
        assert!(msg.contains("--force"), "error suggests --force: {msg}");
        // --force (or an unfinished directory) is allowed.
        RunDir::create(&base, true).expect("force overrides");
        let _ = std::fs::remove_dir_all(&base);
        RunDir::create(&base, false).expect("fresh dir after cleanup");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn io_errors_carry_the_offending_path() {
        let base = scratch("errors");
        let _ = std::fs::remove_dir_all(&base);
        // A run directory cannot be created under a regular file.
        std::fs::create_dir_all(&base).unwrap();
        let file = base.join("not_a_dir");
        std::fs::write(&file, "x").unwrap();
        let err = RunDir::create(file.join("run"), false).expect_err("file in the way");
        assert!(
            err.to_string().contains("not_a_dir"),
            "error names the path: {err}"
        );
        let _ = std::fs::remove_dir_all(&base);
    }
}
