//! Process-global named counters and log₂-bucketed histograms.
//!
//! Handles are cheap `Arc` clones of atomics held in one global
//! registry, so incrementing on a hot path is a single relaxed atomic
//! add. The registry itself is only locked when a *new* name is first
//! used (or a snapshot is taken) — the [`crate::counter!`] and
//! [`crate::histogram!`] macros cache the handle in a `static` after
//! the first lookup.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i`
/// (1 ≤ i ≤ 64) holds values whose highest set bit is `i - 1`, i.e.
/// values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing named counter.
#[derive(Clone)]
pub struct Counter {
    name: Arc<str>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `delta` to the counter (and to the active counter scope).
    pub fn add(&self, delta: u64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
        // Attribute the increment to the thread's active counter scope
        // (if any). The write goes to a thread-local buffer, so scoped
        // attribution adds no cross-thread synchronization to hot
        // paths; buffers drain into the shared scope when the guard
        // that installed the scope on this thread drops.
        if delta > 0 {
            THREAD_SCOPE.with(|slot| {
                if let Some(scope) = slot.borrow_mut().as_mut() {
                    *scope.buffer.entry(Arc::clone(&self.name)).or_insert(0) += delta;
                }
            });
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The counter's current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The registry name this counter was created under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Accumulates the counter increments attributable to one logical
/// scope — typically one experiment — across every thread that
/// participates in it.
///
/// Counter *values* stay global (the atomics are always updated);
/// a scope only captures attribution. Install the scope on a thread
/// with [`CounterScope::enter`]; worker threads spawned by `mlam-par`
/// inherit the submitting thread's scope automatically once
/// [`crate::propagate::install_parallel_propagation`] has run (which
/// [`CounterScope::new`] guarantees). Because every participating
/// thread attributes into the same sink and increments are summed,
/// the totals reported by [`CounterScope::take`] are identical at any
/// thread count.
pub struct CounterScope {
    sink: Arc<ScopeSink>,
}

/// The shared accumulation target behind one [`CounterScope`].
pub(crate) struct ScopeSink {
    deltas: Mutex<BTreeMap<String, u64>>,
}

/// Per-thread view of the installed scope: the shared sink plus a
/// local buffer that batches increments between guard drops.
struct ThreadScope {
    sink: Arc<ScopeSink>,
    buffer: BTreeMap<Arc<str>, u64>,
}

impl ThreadScope {
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut deltas = self.sink.deltas.lock().expect("counter scope poisoned");
        for (name, delta) in std::mem::take(&mut self.buffer) {
            *deltas.entry(name.as_ref().to_owned()).or_insert(0) += delta;
        }
    }
}

thread_local! {
    static THREAD_SCOPE: RefCell<Option<ThreadScope>> = const { RefCell::new(None) };
}

impl CounterScope {
    /// A fresh, empty scope. Also registers telemetry's context hook
    /// with the parallel runtime so the scope follows work onto
    /// `mlam-par` worker threads.
    pub fn new() -> CounterScope {
        crate::propagate::install_parallel_propagation();
        CounterScope {
            sink: Arc::new(ScopeSink {
                deltas: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Installs this scope on the current thread; attribution reverts
    /// to the previously installed scope (if any) when the returned
    /// guard drops.
    pub fn enter(&self) -> CounterScopeGuard {
        enter_sink(Arc::clone(&self.sink))
    }

    /// Drains the increments attributed so far (zero entries omitted).
    /// Call after every guard handed out by [`CounterScope::enter`] —
    /// on this thread or any worker — has dropped, or buffered
    /// increments may not have reached the sink yet.
    pub fn take(&self) -> BTreeMap<String, u64> {
        let mut deltas = self.sink.deltas.lock().expect("counter scope poisoned");
        let mut taken = std::mem::take(&mut *deltas);
        taken.retain(|_, v| *v > 0);
        taken
    }
}

impl Default for CounterScope {
    fn default() -> Self {
        CounterScope::new()
    }
}

/// RAII guard that keeps a [`CounterScope`] installed on one thread.
pub struct CounterScopeGuard {
    prev: Option<ThreadScope>,
}

impl Drop for CounterScopeGuard {
    fn drop(&mut self) {
        THREAD_SCOPE.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some(mut scope) = slot.take() {
                scope.flush();
            }
            *slot = self.prev.take();
        });
    }
}

/// The sink installed on the current thread, if any (used by the
/// parallel-context hook to carry attribution onto workers).
pub(crate) fn current_sink() -> Option<Arc<ScopeSink>> {
    THREAD_SCOPE.with(|slot| slot.borrow().as_ref().map(|t| Arc::clone(&t.sink)))
}

/// Non-draining read of the increments attributed so far to the scope
/// installed on the current thread, filtered to names starting with
/// one of `prefixes`. Returns `None` when no scope is installed.
///
/// The totals merge the shared sink (already-flushed buffers from
/// guards that have dropped) with the *current thread's* still-live
/// buffer, so a sequential driver reading its own scope mid-run sees
/// every increment it has made. Buffers still live on *other* threads
/// are not visible — callers that need exact totals must read from
/// the thread doing the counting (or after worker guards drop, which
/// `mlam-par` guarantees before a parallel call returns).
pub fn scope_counter_totals(prefixes: &[&str]) -> Option<BTreeMap<String, u64>> {
    THREAD_SCOPE.with(|slot| {
        let slot = slot.borrow();
        let scope = slot.as_ref()?;
        let matches = |name: &str| prefixes.iter().any(|p| name.starts_with(p));
        let mut totals: BTreeMap<String, u64> = scope
            .sink
            .deltas
            .lock()
            .expect("counter scope poisoned")
            .iter()
            .filter(|(name, _)| matches(name))
            .map(|(name, &value)| (name.clone(), value))
            .collect();
        for (name, &delta) in &scope.buffer {
            if matches(name) {
                *totals.entry(name.as_ref().to_owned()).or_insert(0) += delta;
            }
        }
        totals.retain(|_, v| *v > 0);
        Some(totals)
    })
}

/// Installs `sink` as the current thread's attribution target.
pub(crate) fn enter_sink(sink: Arc<ScopeSink>) -> CounterScopeGuard {
    THREAD_SCOPE.with(|slot| {
        let prev = slot.borrow_mut().replace(ThreadScope {
            sink,
            buffer: BTreeMap::new(),
        });
        CounterScopeGuard { prev }
    })
}

/// A log₂-bucketed histogram of `u64` observations.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// The bucket index a value falls into.
pub fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        v => v.ilog2() as usize + 1,
    }
}

/// The exclusive upper bound of a bucket (`None` for the last bucket,
/// whose bound 2^64 does not fit in `u64`).
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    1u64.checked_shl(index as u32)
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramCells {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counts into a [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
            buckets: self
                .inner
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram: total count, total sum, and
/// the non-empty `(bucket_index, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty `(log₂ bucket index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or `None` for an empty histogram.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`, clamped) estimated from the
    /// log₂ buckets, or `None` for an empty histogram.
    ///
    /// The estimate is the *inclusive upper edge* of the bucket holding
    /// the rank-`⌈q·count⌉` observation (`2^i − 1` for bucket `i`, `0`
    /// for the zero bucket), i.e. a conservative bound that is never
    /// below the true quantile by more than the bucket width. Bucket
    /// order in the snapshot is not assumed.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut buckets = self.buckets.clone();
        buckets.sort_unstable();
        let mut seen = 0u64;
        for &(index, n) in &buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_inclusive_max(index as usize));
            }
        }
        // Buckets should sum to `count`; tolerate a short snapshot by
        // answering with the largest populated bucket.
        buckets
            .last()
            .map(|&(index, _)| bucket_inclusive_max(index as usize))
    }
}

/// The largest value a bucket can hold: `0` for the zero bucket,
/// `2^i − 1` for bucket `i`, `u64::MAX` for the last bucket.
fn bucket_inclusive_max(index: usize) -> u64 {
    match bucket_upper_bound(index) {
        Some(bound) => bound - 1,
        None => u64::MAX,
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter increments since `earlier` (zero-delta entries are
    /// dropped; histograms are not diffed).
    pub fn counter_deltas_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(name, &now)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                let delta = now.saturating_sub(before);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// Panics unless `name` is a usable metric name: non-empty, printable
/// ASCII, no whitespace. Enforced at registration so a bad name fails
/// fast at its introduction site instead of producing a `metrics.jsonl`
/// line (or a Prometheus exposition line) that downstream parsers
/// choke on.
fn validate_metric_name(name: &str) {
    assert!(!name.is_empty(), "metric name must not be empty");
    for c in name.chars() {
        assert!(
            c.is_ascii() && !c.is_ascii_whitespace() && !c.is_ascii_control(),
            "metric name {name:?} contains {c:?}: names must be printable ASCII \
             with no whitespace (newlines would corrupt line-oriented outputs)"
        );
    }
}

/// The counter registered under `name`, creating it on first use.
///
/// Panics if `name` is empty or contains whitespace, control
/// characters, or non-ASCII (see `validate_metric_name` for the
/// rationale).
pub fn counter_handle(name: &str) -> Counter {
    validate_metric_name(name);
    let mut counters = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    counters
        .entry(name.to_owned())
        .or_insert_with(|| Counter {
            name: Arc::from(name),
            cell: Arc::new(AtomicU64::new(0)),
        })
        .clone()
}

/// The histogram registered under `name`, creating it on first use.
///
/// Panics on invalid names, same contract as [`counter_handle`].
pub fn histogram_handle(name: &str) -> Histogram {
    validate_metric_name(name);
    let mut histograms = registry()
        .histograms
        .lock()
        .expect("histogram registry poisoned");
    histograms
        .entry(name.to_owned())
        .or_insert_with(Histogram::new)
        .clone()
}

/// Snapshots every registered counter and histogram.
pub fn snapshot() -> MetricsSnapshot {
    let counters = registry()
        .counters
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(name, c)| (name.clone(), c.get()))
        .collect();
    let histograms = registry()
        .histograms
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|(name, h)| (name.clone(), h.snapshot()))
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// One line of a `metrics.jsonl` dump.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MetricLine {
    /// One counter.
    Counter {
        /// Counter name.
        name: String,
        /// Counter value at snapshot time.
        value: u64,
    },
    /// One histogram.
    Histogram {
        /// Histogram name.
        name: String,
        /// Total observations.
        count: u64,
        /// Sum of all observed values.
        sum: u64,
        /// Non-empty `(log₂ bucket index, count)` pairs.
        buckets: Vec<(u32, u64)>,
    },
}

/// Writes a snapshot as JSONL: one [`MetricLine`] object per line,
/// counters first, then histograms, each alphabetically.
pub fn write_metrics_jsonl<W: std::io::Write>(
    mut out: W,
    snap: &MetricsSnapshot,
) -> std::io::Result<()> {
    let to_io_err = |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    for (name, &value) in &snap.counters {
        let line = serde_json::to_string(&MetricLine::Counter {
            name: name.clone(),
            value,
        })
        .map_err(to_io_err)?;
        writeln!(out, "{line}")?;
    }
    for (name, h) in &snap.histograms {
        let line = serde_json::to_string(&MetricLine::Histogram {
            name: name.clone(),
            count: h.count,
            sum: h.sum,
            buckets: h.buckets.clone(),
        })
        .map_err(to_io_err)?;
        writeln!(out, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_jsonl_lines_deserialize() {
        let c = counter_handle("test.metrics.jsonl_counter");
        c.add(9);
        histogram_handle("test.metrics.jsonl_histogram").observe(5);
        let snap = snapshot();
        let mut buf = Vec::new();
        write_metrics_jsonl(&mut buf, &snap).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut saw_counter = false;
        for line in text.lines() {
            let parsed: MetricLine = serde_json::from_str(line).unwrap();
            if let MetricLine::Counter { name, value } = &parsed {
                if name == "test.metrics.jsonl_counter" {
                    assert!(*value >= 9);
                    saw_counter = true;
                }
            }
        }
        assert!(saw_counter);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter_handle("test.metrics.counter_a");
        let before = snapshot();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), before.counters["test.metrics.counter_a"] + 4);
        let after = snapshot();
        let deltas = after.counter_deltas_since(&before);
        assert_eq!(deltas["test.metrics.counter_a"], 4);
    }

    #[test]
    fn handles_alias_the_same_cell() {
        let a = counter_handle("test.metrics.alias");
        let b = counter_handle("test.metrics.alias");
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), b.get());
        assert!(a.get() >= 7);
    }

    #[test]
    fn bucket_index_edges() {
        // Exhaustive around every power-of-two boundary that fits.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn bucket_bounds_match_indices() {
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let bound = bucket_upper_bound(i).expect("all but last bucket have bounds");
            // Everything strictly below the bound lands at or before i.
            assert!(bucket_index(bound - 1) <= i);
            // The bound itself belongs to the next bucket.
            assert_eq!(bucket_index(bound), i + 1);
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_observations_land_in_buckets() {
        let h = histogram_handle("test.metrics.histogram");
        h.observe(0);
        h.observe(1);
        h.observe(7);
        h.observe(8);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        // The sum cell wraps on overflow, as fetch_add does.
        assert_eq!(snap.sum, u64::MAX.wrapping_add(16));
        let buckets: BTreeMap<u32, u64> = snap.buckets.iter().copied().collect();
        assert_eq!(buckets[&0], 1); // 0
        assert_eq!(buckets[&1], 1); // 1
        assert_eq!(buckets[&3], 1); // 7 in [4, 8)
        assert_eq!(buckets[&4], 1); // 8 in [8, 16)
        assert_eq!(buckets[&64], 1); // u64::MAX
        assert_eq!(snap.mean(), Some(snap.sum as f64 / 5.0));
    }

    #[test]
    fn percentiles_from_log2_buckets() {
        let h = histogram_handle("test.metrics.percentile");
        // 90 fast observations in [4, 8), 10 slow ones in [1024, 2048).
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..10 {
            h.observe(1500);
        }
        let snap = h.snapshot();
        // p50 and p90 land in the fast bucket: inclusive max 7.
        assert_eq!(snap.percentile(0.5), Some(7));
        assert_eq!(snap.percentile(0.90), Some(7));
        // p95 and p99 land in the slow bucket: inclusive max 2047.
        assert_eq!(snap.percentile(0.95), Some(2047));
        assert_eq!(snap.percentile(0.99), Some(2047));
        // Extremes clamp to the populated range.
        assert_eq!(snap.percentile(0.0), Some(7));
        assert_eq!(snap.percentile(1.0), Some(2047));
        assert_eq!(snap.percentile(-3.0), Some(7));
        assert_eq!(snap.percentile(7.0), Some(2047));
    }

    #[test]
    fn percentile_handles_zeros_and_extremes() {
        let h = histogram_handle("test.metrics.percentile_edges");
        h.observe(0);
        h.observe(0);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.5), Some(0), "zero bucket reports 0");
        assert_eq!(snap.percentile(1.0), Some(u64::MAX));
        // Unordered snapshots still work.
        let shuffled = HistogramSnapshot {
            count: snap.count,
            sum: snap.sum,
            buckets: snap.buckets.iter().rev().copied().collect(),
        };
        assert_eq!(shuffled.percentile(0.5), Some(0));
        assert_eq!(HistogramSnapshot::default().percentile(0.5), None);
    }

    #[test]
    fn counter_scopes_attribute_increments() {
        let c = counter_handle("test.metrics.scope_a");
        c.add(100); // outside any scope: global only
        let scope = CounterScope::new();
        {
            let _guard = scope.enter();
            c.add(3);
            counter_handle("test.metrics.scope_b").incr();
        }
        let deltas = scope.take();
        assert_eq!(deltas["test.metrics.scope_a"], 3);
        assert_eq!(deltas["test.metrics.scope_b"], 1);
        // take() drains: a second take sees nothing new.
        assert!(scope.take().is_empty());
        // Increments after the guard dropped are not attributed.
        c.add(7);
        assert!(scope.take().is_empty());
    }

    #[test]
    fn scope_totals_read_without_draining() {
        assert_eq!(scope_counter_totals(&["test."]), None, "no scope installed");
        let a = counter_handle("test.metrics.totals_a");
        let b = counter_handle("test.metrics.totals_other");
        let scope = CounterScope::new();
        {
            let _guard = scope.enter();
            a.add(5);
            b.add(2);
            // Buffered increments on this thread are visible...
            let totals = scope_counter_totals(&["test.metrics.totals_a"]).unwrap();
            assert_eq!(totals["test.metrics.totals_a"], 5);
            // ...and the prefix filter drops non-matching names.
            assert!(!totals.contains_key("test.metrics.totals_other"));
            a.add(1);
            let totals = scope_counter_totals(&["test.metrics.totals_"]).unwrap();
            assert_eq!(totals["test.metrics.totals_a"], 6);
            assert_eq!(totals["test.metrics.totals_other"], 2);
        }
        {
            // Reads after a guard drop see the flushed sink; reading
            // never drains what take() will report.
            let _guard = scope.enter();
            let totals = scope_counter_totals(&["test.metrics.totals_"]).unwrap();
            assert_eq!(totals["test.metrics.totals_a"], 6);
        }
        assert_eq!(scope.take()["test.metrics.totals_a"], 6);
    }

    #[test]
    fn counter_scopes_nest_and_restore() {
        let c = counter_handle("test.metrics.scope_nest");
        let outer = CounterScope::new();
        let inner = CounterScope::new();
        let _outer_guard = outer.enter();
        c.add(1);
        {
            let _inner_guard = inner.enter();
            c.add(10);
        }
        c.add(2);
        drop(_outer_guard);
        assert_eq!(inner.take()["test.metrics.scope_nest"], 10);
        assert_eq!(outer.take()["test.metrics.scope_nest"], 3);
    }

    #[test]
    fn counter_scope_sums_across_threads() {
        let c = counter_handle("test.metrics.scope_threads");
        let scope = CounterScope::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scope = &scope;
                let c = c.clone();
                s.spawn(move || {
                    let _guard = scope.enter();
                    for _ in 0..25 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(scope.take()["test.metrics.scope_threads"], 100);
    }

    #[test]
    fn counter_names_are_exposed() {
        assert_eq!(
            counter_handle("test.metrics.named").name(),
            "test.metrics.named"
        );
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = histogram_handle("test.metrics.empty");
        assert_eq!(h.snapshot().mean(), None);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn valid_names_register() {
        // The full character classes valid names may use.
        counter_handle("test.metrics.valid-name_2:ok");
        histogram_handle("test.metrics.valid.histogram");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_counter_name_is_rejected() {
        counter_handle("");
    }

    #[test]
    #[should_panic(expected = "no whitespace")]
    fn whitespace_counter_name_is_rejected() {
        counter_handle("oracle queries");
    }

    #[test]
    #[should_panic(expected = "no whitespace")]
    fn newline_counter_name_is_rejected() {
        counter_handle("oracle.queries\ninjected 999");
    }

    #[test]
    #[should_panic(expected = "printable ASCII")]
    fn non_ascii_counter_name_is_rejected() {
        counter_handle("oracle.requêtes");
    }

    #[test]
    #[should_panic(expected = "no whitespace")]
    fn tab_histogram_name_is_rejected() {
        histogram_handle("span\tmicros");
    }

    #[test]
    #[should_panic(expected = "printable ASCII")]
    fn control_char_histogram_name_is_rejected() {
        histogram_handle("span.\u{7}bell");
    }

    #[test]
    fn percentile_empty_histogram_is_none() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.percentile(0.0), None);
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.percentile(1.0), None);
    }

    #[test]
    fn percentile_q0_and_q1_hit_the_populated_extremes() {
        let snap = HistogramSnapshot {
            count: 3,
            sum: 1 + 10 + 1000,
            buckets: vec![(1, 1), (4, 1), (10, 1)],
        };
        // q=0 clamps to rank 1: the smallest populated bucket's
        // inclusive max (bucket 1 holds value 1 → max 1).
        assert_eq!(snap.percentile(0.0), Some(1));
        // q=1 is rank 3: bucket 10 holds [512, 1024) → max 1023.
        assert_eq!(snap.percentile(1.0), Some(1023));
    }

    #[test]
    fn percentile_single_bucket_answers_every_quantile() {
        let snap = HistogramSnapshot {
            count: 50,
            sum: 250,
            buckets: vec![(3, 50)], // all in [4, 8)
        };
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(snap.percentile(q), Some(7), "q={q}");
        }
    }

    #[test]
    fn percentile_bucket_boundary_rank_lands_on_lower_bucket() {
        // 10 observations: exactly 5 in bucket 2 ([2,4)), 5 in bucket 6
        // ([32,64)). Rank ⌈0.5·10⌉ = 5 is the LAST observation of the
        // lower bucket, so p50 must answer with the lower bucket's max,
        // and any q just above 0.5 must tip into the upper bucket.
        let snap = HistogramSnapshot {
            count: 10,
            sum: 5 * 3 + 5 * 40,
            buckets: vec![(2, 5), (6, 5)],
        };
        assert_eq!(snap.percentile(0.5), Some(3));
        assert_eq!(snap.percentile(0.51), Some(63));
    }

    #[test]
    fn counter_deltas_include_counters_born_after_the_baseline() {
        let earlier = MetricsSnapshot {
            counters: [("old.counter".to_string(), 5)].into_iter().collect(),
            histograms: BTreeMap::new(),
        };
        let later = MetricsSnapshot {
            counters: [
                ("old.counter".to_string(), 9),
                ("new.counter".to_string(), 3),
            ]
            .into_iter()
            .collect(),
            histograms: BTreeMap::new(),
        };
        let deltas = later.counter_deltas_since(&earlier);
        assert_eq!(deltas["old.counter"], 4);
        // A counter absent from the earlier snapshot counts from zero.
        assert_eq!(deltas["new.counter"], 3);
        // And the reverse diff drops the vanished counter entirely
        // (saturating, never underflowing).
        assert!(earlier.counter_deltas_since(&later).is_empty());
    }
}
