//! Property-based tests for netlists, generators, CNF encoding and the
//! `.bench` format.

use mlam_netlist::bench_format::{from_bench, to_bench};
use mlam_netlist::cnf::{tseitin_encode, Cnf};
use mlam_netlist::generate::{parity_tree, random_circuit, ripple_adder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Random circuits round-trip through the `.bench` text format.
    #[test]
    fn bench_round_trip(seed in any::<u64>(), gates in 5usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(6, gates, 2, &mut rng);
        let back = from_bench(&to_bench(&c)).expect("parse");
        prop_assert!(c.equivalent_exhaustive(&back));
    }

    /// Adders add for arbitrary widths and operands.
    #[test]
    fn adder_correct(width in 1usize..7, a in any::<u64>(), b in any::<u64>()) {
        let add = ripple_adder(width);
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let mut bits = Vec::new();
        for i in 0..width { bits.push(a >> i & 1 == 1); }
        for i in 0..width { bits.push(b >> i & 1 == 1); }
        let out = add.simulate(&bits);
        let mut got = 0u64;
        for (i, &o) in out.iter().enumerate() {
            if o { got |= 1 << i; }
        }
        prop_assert_eq!(got, a + b);
    }

    /// Parity trees compute parity for arbitrary widths.
    #[test]
    fn parity_correct(width in 1usize..12, v in any::<u64>()) {
        let p = parity_tree(width);
        let bits: Vec<bool> = (0..width).map(|i| v >> i & 1 == 1).collect();
        let expected = bits.iter().filter(|&&b| b).count() % 2 == 1;
        prop_assert_eq!(p.simulate(&bits)[0], expected);
    }

    /// The Tseitin encoding is satisfied by every real execution:
    /// assigning each net variable its simulated value (and computing
    /// the XOR-chain internals consistently) satisfies every clause in
    /// which only net variables occur, and the full CNF remains
    /// satisfiable with the output pinned to the simulated value.
    #[test]
    fn tseitin_respects_simulation(seed in any::<u64>(), input_mask in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_circuit(5, 12, 1, &mut rng);
        let mut cnf = Cnf::new(0);
        let enc = tseitin_encode(&circuit, &mut cnf);
        let bits: Vec<bool> = (0..5).map(|i| input_mask >> i & 1 == 1).collect();
        let sim = circuit.simulate(&bits);
        // Pin inputs and output, solve with the CDCL solver via
        // brute force over remaining vars (small).
        for (i, &b) in bits.iter().enumerate() {
            let v = enc.vars[i];
            cnf.add_clause(vec![if b { v } else { -v }]);
        }
        let ov = enc.vars[circuit.outputs()[0].index()];
        cnf.add_clause(vec![if sim[0] { ov } else { -ov }]);
        // The formula must be satisfiable (consistent execution exists).
        let n = cnf.num_vars;
        prop_assume!(n <= 22);
        let mut sat = false;
        for mask in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if cnf.eval(&assignment) {
                sat = true;
                break;
            }
        }
        prop_assert!(sat, "no consistent execution for inputs {input_mask:b}");
    }

    /// Circuit depth never exceeds gate count.
    #[test]
    fn depth_bounded_by_gates(seed in any::<u64>(), gates in 3usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(4, gates, 1, &mut rng);
        prop_assert!(c.depth() <= c.num_gates());
    }
}
