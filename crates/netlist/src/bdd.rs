//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The exhaustive equivalence checks used by the locking attacks cap
//! out at ~20 inputs; BDDs give *formal* equivalence for wider
//! circuits. The manager implements the classic hash-consed node store
//! with an ITE (if-then-else) apply core and a computed-table cache —
//! the canonical-form property makes circuit equivalence a pointer
//! comparison.
//!
//! Variable order is the primary-input order of the netlist (callers
//! who need a better order can permute inputs first).
//!
//! # Example
//!
//! ```
//! use mlam_netlist::bdd::BddManager;
//! use mlam_netlist::generate::{c17, ripple_adder};
//!
//! let mut mgr = BddManager::new(5);
//! let outs = mgr.build_netlist(&c17());
//! // c17's two outputs are distinct functions:
//! assert_ne!(outs[0], outs[1]);
//! ```

use crate::netlist::{GateKind, Netlist};
use std::collections::HashMap;

/// Reference to a BDD node (canonical: equal functions ⇔ equal refs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant FALSE node.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant TRUE node.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is a terminal node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

/// A hash-consed BDD manager over a fixed variable count.
#[derive(Debug)]
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
}

impl BddManager {
    /// Creates a manager for `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        // Slots 0/1 are sentinels for FALSE/TRUE (never dereferenced
        // as internal nodes).
        let sentinel = Node {
            var: u32::MAX,
            low: BddRef::FALSE,
            high: BddRef::FALSE,
        };
        BddManager {
            num_vars,
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Live node count (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The BDD of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    pub fn var(&mut self, i: usize) -> BddRef {
        assert!(i < self.num_vars, "variable out of range");
        self.mk(i as u32, BddRef::FALSE, BddRef::TRUE)
    }

    fn mk(&mut self, var: u32, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn top_var(&self, f: BddRef) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.nodes[f.0 as usize].var
        }
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        if f.is_const() || self.nodes[f.0 as usize].var != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.low, n.high)
        }
    }

    /// The if-then-else combinator `ite(f, g, h) = f·g + ¬f·h` — the
    /// universal binary operation of BDD packages.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(v, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Evaluates a BDD under an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment width");
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        cur == BddRef::TRUE
    }

    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables.
    pub fn sat_count(&self, f: BddRef) -> u128 {
        fn count(
            mgr: &BddManager,
            f: BddRef,
            from_var: u32,
            memo: &mut HashMap<(BddRef, u32), u128>,
        ) -> u128 {
            let top = if f.is_const() {
                mgr.num_vars as u32
            } else {
                mgr.nodes[f.0 as usize].var
            };
            let skipped = (top - from_var) as u128;
            let base: u128 = if f == BddRef::TRUE {
                1
            } else if f == BddRef::FALSE {
                0
            } else {
                if let Some(&c) = memo.get(&(f, top)) {
                    return c << skipped;
                }
                let n = mgr.nodes[f.0 as usize];
                let c = count(mgr, n.low, top + 1, memo) + count(mgr, n.high, top + 1, memo);
                memo.insert((f, top), c);
                c
            };
            base << skipped
        }
        let mut memo = HashMap::new();
        count(self, f, 0, &mut memo)
    }

    /// One satisfying assignment, or `None` for FALSE.
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars];
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            if n.high != BddRef::FALSE {
                assignment[n.var as usize] = true;
                cur = n.high;
            } else {
                cur = n.low;
            }
        }
        Some(assignment)
    }

    /// Builds the BDDs of every output of a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's input count differs from `num_vars`.
    pub fn build_netlist(&mut self, netlist: &Netlist) -> Vec<BddRef> {
        assert_eq!(
            netlist.num_inputs(),
            self.num_vars,
            "netlist input count must match the manager"
        );
        let mut refs: Vec<BddRef> = (0..self.num_vars).map(|i| self.var(i)).collect();
        for gate in netlist.gates() {
            let ins: Vec<BddRef> = gate.inputs.iter().map(|n| refs[n.index()]).collect();
            let out = match gate.kind {
                GateKind::And => ins.iter().skip(1).fold(ins[0], |acc, &b| self.and(acc, b)),
                GateKind::Or => ins.iter().skip(1).fold(ins[0], |acc, &b| self.or(acc, b)),
                GateKind::Nand => {
                    let a = ins.iter().skip(1).fold(ins[0], |acc, &b| self.and(acc, b));
                    self.not(a)
                }
                GateKind::Nor => {
                    let a = ins.iter().skip(1).fold(ins[0], |acc, &b| self.or(acc, b));
                    self.not(a)
                }
                GateKind::Xor => ins.iter().skip(1).fold(ins[0], |acc, &b| self.xor(acc, b)),
                GateKind::Xnor => {
                    let a = ins.iter().skip(1).fold(ins[0], |acc, &b| self.xor(acc, b));
                    self.not(a)
                }
                GateKind::Not => self.not(ins[0]),
                GateKind::Buf => ins[0],
                GateKind::Mux => {
                    let (s, a, b) = (ins[0], ins[1], ins[2]);
                    self.ite(s, b, a)
                }
            };
            refs.push(out);
        }
        netlist.outputs().iter().map(|o| refs[o.index()]).collect()
    }
}

/// Formal equivalence of two netlists via BDDs: canonical forms make
/// the check a per-output pointer comparison.
///
/// # Panics
///
/// Panics if input or output counts differ.
pub fn equivalent_bdd(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut mgr = BddManager::new(a.num_inputs());
    let oa = mgr.build_netlist(a);
    let ob = mgr.build_netlist(b);
    oa == ob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{c17, comparator, parity_tree, random_circuit, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constants_and_vars() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let nx = mgr.not(x);
        assert_ne!(x, nx);
        let xx = mgr.and(x, nx);
        assert_eq!(xx, BddRef::FALSE);
        let xo = mgr.or(x, nx);
        assert_eq!(xo, BddRef::TRUE);
    }

    #[test]
    fn bdd_matches_simulation_on_random_circuits() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let c = random_circuit(8, 30, 2, &mut rng);
            let mut mgr = BddManager::new(8);
            let outs = mgr.build_netlist(&c);
            for v in 0..256u64 {
                let bits: Vec<bool> = (0..8).map(|i| v >> i & 1 == 1).collect();
                let sim = c.simulate(&bits);
                for (o, bdd) in sim.iter().zip(&outs) {
                    assert_eq!(*o, mgr.eval(*bdd, &bits));
                }
            }
        }
    }

    #[test]
    fn equivalence_is_reflexive_and_detects_difference() {
        let a = c17();
        assert!(equivalent_bdd(&a, &a));
        let adder = ripple_adder(3);
        assert!(equivalent_bdd(&adder, &adder));
        // Comparator vs parity over the same I/O shape: different.
        let cmp = comparator(2); // 4 in, 1 out
        let par = parity_tree(4); // 4 in, 1 out
        assert!(!equivalent_bdd(&cmp, &par));
    }

    #[test]
    fn sat_count_of_parity_is_half_the_cube() {
        let p = parity_tree(10);
        let mut mgr = BddManager::new(10);
        let out = mgr.build_netlist(&p)[0];
        assert_eq!(mgr.sat_count(out), 512);
    }

    #[test]
    fn sat_count_of_and() {
        let mut mgr = BddManager::new(6);
        let a = mgr.var(0);
        let b = mgr.var(5);
        let f = mgr.and(a, b);
        assert_eq!(mgr.sat_count(f), 16); // 2^4 free variables
        assert_eq!(mgr.sat_count(BddRef::TRUE), 64);
        assert_eq!(mgr.sat_count(BddRef::FALSE), 0);
    }

    #[test]
    fn any_sat_returns_a_model() {
        let cmp = comparator(3);
        let mut mgr = BddManager::new(6);
        let out = mgr.build_netlist(&cmp)[0];
        let model = mgr.any_sat(out).expect("a > b is satisfiable");
        assert!(mgr.eval(out, &model));
        assert!(cmp.simulate(&model)[0]);
        assert_eq!(mgr.any_sat(BddRef::FALSE), None);
    }

    #[test]
    fn parity_bdd_is_linear_size() {
        // Parity has a linear-size BDD under any order. The manager
        // also retains the intermediate tree-node BDDs, so the total
        // store stays O(n log n)-ish rather than exponential.
        let p = parity_tree(16);
        let mut mgr = BddManager::new(16);
        let _ = mgr.build_netlist(&p);
        assert!(mgr.num_nodes() < 160, "{} nodes", mgr.num_nodes());
    }

    #[test]
    fn wide_equivalence_beyond_exhaustive_reach() {
        // 24 inputs: exhaustive comparison would need 16.7M sims; BDD
        // equivalence is instant.
        let a = ripple_adder(12); // 24 inputs
        let b = ripple_adder(12);
        assert!(equivalent_bdd(&a, &b));
    }
}
