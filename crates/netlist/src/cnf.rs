//! Tseitin encoding of netlists into CNF, for the SAT attack.

use crate::netlist::{GateKind, Net, Netlist};

/// A CNF formula in DIMACS conventions: variables are `1..=num_vars`,
/// a literal is a non-zero `i32` (negative = negated).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> i32 {
        self.num_vars += 1;
        self.num_vars as i32
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics if the clause is empty or references an unknown variable.
    pub fn add_clause(&mut self, clause: Vec<i32>) {
        assert!(!clause.is_empty(), "empty clause");
        for &lit in &clause {
            assert!(lit != 0, "zero literal");
            assert!(
                lit.unsigned_abs() as usize <= self.num_vars,
                "literal {lit} out of range"
            );
        }
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Evaluates the formula under a full assignment
    /// (`assignment[v-1]` = value of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment width");
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let v = assignment[lit.unsigned_abs() as usize - 1];
                if lit > 0 {
                    v
                } else {
                    !v
                }
            })
        })
    }
}

/// Result of Tseitin-encoding a netlist: the variable assigned to each
/// net (the clauses themselves are appended to the caller's [`Cnf`]).
///
/// Net `i` of the source netlist maps to CNF variable `vars[i]`.
#[derive(Clone, Debug)]
pub struct TseitinEncoding {
    /// CNF variable of each net, indexed by [`Net::index`].
    pub vars: Vec<i32>,
}

impl TseitinEncoding {
    /// The CNF variable carrying net `net`.
    pub fn var(&self, net: Net) -> i32 {
        self.vars[net.index()]
    }

    /// CNF variables of the primary inputs.
    pub fn input_vars(&self, netlist: &Netlist) -> Vec<i32> {
        (0..netlist.num_inputs()).map(|i| self.vars[i]).collect()
    }

    /// CNF variables of the outputs.
    pub fn output_vars(&self, netlist: &Netlist) -> Vec<i32> {
        netlist.outputs().iter().map(|o| self.var(*o)).collect()
    }
}

/// Tseitin-encodes a netlist into `cnf`, allocating fresh variables.
///
/// The returned encoding's CNF is satisfiable exactly by assignments
/// that are consistent executions of the circuit: for every model, each
/// gate variable equals the gate function of its input variables.
///
/// Encoding sizes: AND/OR/NAND/NOR use `fan_in + 1` clauses; XOR/XNOR
/// are encoded pairwise; MUX uses 4 clauses.
pub fn tseitin_encode(netlist: &Netlist, cnf: &mut Cnf) -> TseitinEncoding {
    let mut vars = Vec::with_capacity(netlist.num_nets());
    for _ in 0..netlist.num_inputs() {
        vars.push(cnf.fresh_var());
    }
    for gate in netlist.gates() {
        let ins: Vec<i32> = gate.inputs.iter().map(|n| vars[n.index()]).collect();
        let out = match gate.kind {
            GateKind::And => encode_and(cnf, &ins, false),
            GateKind::Nand => encode_and(cnf, &ins, true),
            GateKind::Or => encode_or(cnf, &ins, false),
            GateKind::Nor => encode_or(cnf, &ins, true),
            GateKind::Xor => encode_xor_chain(cnf, &ins, false),
            GateKind::Xnor => encode_xor_chain(cnf, &ins, true),
            GateKind::Not => {
                let o = cnf.fresh_var();
                cnf.add_clause(vec![o, ins[0]]);
                cnf.add_clause(vec![-o, -ins[0]]);
                o
            }
            GateKind::Buf => {
                let o = cnf.fresh_var();
                cnf.add_clause(vec![-o, ins[0]]);
                cnf.add_clause(vec![o, -ins[0]]);
                o
            }
            GateKind::Mux => {
                let (s, a, b) = (ins[0], ins[1], ins[2]);
                let o = cnf.fresh_var();
                // s=0 -> o=a ; s=1 -> o=b.
                cnf.add_clause(vec![s, -o, a]);
                cnf.add_clause(vec![s, o, -a]);
                cnf.add_clause(vec![-s, -o, b]);
                cnf.add_clause(vec![-s, o, -b]);
                o
            }
        };
        vars.push(out);
    }
    TseitinEncoding { vars }
}

fn encode_and(cnf: &mut Cnf, ins: &[i32], negate: bool) -> i32 {
    let o = cnf.fresh_var();
    let out_lit = if negate { -o } else { o };
    // out -> every input true.
    for &i in ins {
        cnf.add_clause(vec![-out_lit, i]);
    }
    // all inputs true -> out.
    let mut clause: Vec<i32> = ins.iter().map(|&i| -i).collect();
    clause.push(out_lit);
    cnf.add_clause(clause);
    o
}

fn encode_or(cnf: &mut Cnf, ins: &[i32], negate: bool) -> i32 {
    let o = cnf.fresh_var();
    let out_lit = if negate { -o } else { o };
    for &i in ins {
        cnf.add_clause(vec![out_lit, -i]);
    }
    let mut clause: Vec<i32> = ins.to_vec();
    clause.push(-out_lit);
    cnf.add_clause(clause);
    o
}

fn encode_xor2(cnf: &mut Cnf, a: i32, b: i32) -> i32 {
    let o = cnf.fresh_var();
    cnf.add_clause(vec![-o, a, b]);
    cnf.add_clause(vec![-o, -a, -b]);
    cnf.add_clause(vec![o, -a, b]);
    cnf.add_clause(vec![o, a, -b]);
    o
}

fn encode_xor_chain(cnf: &mut Cnf, ins: &[i32], negate: bool) -> i32 {
    let mut acc = ins[0];
    for &i in &ins[1..] {
        acc = encode_xor2(cnf, acc, i);
    }
    if negate {
        let o = cnf.fresh_var();
        cnf.add_clause(vec![o, acc]);
        cnf.add_clause(vec![-o, -acc]);
        o
    } else if ins.len() == 1 {
        // Single-input XOR is a buffer; give it its own variable to keep
        // the net-to-var map injective over gates.
        let o = cnf.fresh_var();
        cnf.add_clause(vec![-o, acc]);
        cnf.add_clause(vec![o, -acc]);
        o
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{c17, parity_tree, ripple_adder};
    use crate::netlist::Netlist;

    /// Checks equisatisfiability constructively: for every input
    /// assignment, extend it along the circuit and verify the CNF is
    /// satisfied with the correct output variable values.
    fn check_encoding(netlist: &Netlist) {
        assert!(netlist.num_inputs() <= 12);
        let mut cnf = Cnf::new(0);
        let enc = tseitin_encode(netlist, &mut cnf);
        for v in 0..(1u64 << netlist.num_inputs()) {
            let bits: Vec<bool> = (0..netlist.num_inputs()).map(|i| v >> i & 1 == 1).collect();
            let net_values = netlist.simulate_nets(&bits);
            // Build the full assignment: every CNF var that corresponds
            // to a net takes the simulated value; Tseitin-internal vars
            // (from XOR chains) must be computed too. We instead check
            // satisfiability via unit propagation of net vars only when
            // there are no internal vars; for the general case, evaluate
            // clause-by-clause with internal variables derived from the
            // simulation by re-walking the encoding.
            let mut assignment = vec![false; cnf.num_vars];
            // Re-encode to discover internal variable semantics: redo
            // the encoding symbolically is complex; instead rely on the
            // fact that assignments of net vars uniquely extend, and
            // verify with a tiny brute-force over internal vars.
            for (net_idx, &var) in enc.vars.iter().enumerate() {
                assignment[var as usize - 1] = net_values[net_idx];
            }
            let net_vars: std::collections::HashSet<usize> =
                enc.vars.iter().map(|&v| v as usize - 1).collect();
            let internal: Vec<usize> = (0..cnf.num_vars)
                .filter(|i| !net_vars.contains(i))
                .collect();
            assert!(internal.len() <= 16, "too many internal vars for test");
            let mut satisfied = false;
            for mask in 0..(1u64 << internal.len()) {
                for (k, &i) in internal.iter().enumerate() {
                    assignment[i] = mask >> k & 1 == 1;
                }
                if cnf.eval(&assignment) {
                    satisfied = true;
                    break;
                }
            }
            assert!(satisfied, "no consistent extension for input {v:b}");
        }
    }

    #[test]
    fn c17_encoding_is_consistent() {
        check_encoding(&c17());
    }

    #[test]
    fn adder_encoding_is_consistent() {
        check_encoding(&ripple_adder(3));
    }

    #[test]
    fn parity_encoding_is_consistent() {
        check_encoding(&parity_tree(5));
    }

    #[test]
    fn wrong_output_value_unsatisfiable() {
        // Force the c17 output variable to the wrong value and check no
        // assignment satisfies the formula for a fixed input.
        let net = c17();
        let mut cnf = Cnf::new(0);
        let enc = tseitin_encode(&net, &mut cnf);
        let inputs = [false, true, false, true, true];
        let sim = net.simulate(&inputs);
        // Pin the inputs.
        for (i, &b) in inputs.iter().enumerate() {
            let v = enc.vars[i];
            cnf.add_clause(vec![if b { v } else { -v }]);
        }
        // Pin output 0 to the WRONG value.
        let ov = enc.output_vars(&net)[0];
        cnf.add_clause(vec![if sim[0] { -ov } else { ov }]);
        // Brute force: no assignment satisfies.
        let n = cnf.num_vars;
        assert!(n <= 20);
        let mut any = false;
        for mask in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if cnf.eval(&assignment) {
                any = true;
                break;
            }
        }
        assert!(!any, "pinning the wrong output must be UNSAT");
    }

    #[test]
    fn fresh_vars_are_sequential() {
        let mut cnf = Cnf::new(0);
        assert_eq!(cnf.fresh_var(), 1);
        assert_eq!(cnf.fresh_var(), 2);
        assert_eq!(cnf.num_vars, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clause_var_out_of_range_panics() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![2]);
    }
}
