//! The core netlist type.

use std::fmt;

/// Identifier of a net (wire) inside a [`Netlist`].
///
/// Nets `0..num_inputs` are the primary inputs; every gate drives one
/// fresh net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(pub(crate) u32);

impl Net {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Gate kinds supported by the netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Multi-input AND.
    And,
    /// Multi-input OR.
    Or,
    /// Multi-input NAND.
    Nand,
    /// Multi-input NOR.
    Nor,
    /// Two-input XOR (multi-input = parity).
    Xor,
    /// Two-input XNOR (multi-input = parity complement).
    Xnor,
    /// Inverter (exactly one input).
    Not,
    /// Buffer (exactly one input).
    Buf,
    /// 2:1 multiplexer: inputs `[sel, a, b]`, output `sel ? b : a`.
    Mux,
}

impl GateKind {
    /// Evaluates the gate on the given input values.
    ///
    /// # Panics
    ///
    /// Panics on an arity violation (`Not`/`Buf` need exactly 1 input,
    /// `Mux` exactly 3, the rest at least 1).
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::And => {
                assert!(!inputs.is_empty());
                inputs.iter().all(|&b| b)
            }
            GateKind::Or => {
                assert!(!inputs.is_empty());
                inputs.iter().any(|&b| b)
            }
            GateKind::Nand => !GateKind::And.eval(inputs),
            GateKind::Nor => !GateKind::Or.eval(inputs),
            GateKind::Xor => {
                assert!(!inputs.is_empty());
                inputs.iter().fold(false, |a, &b| a ^ b)
            }
            GateKind::Xnor => !GateKind::Xor.eval(inputs),
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT takes exactly one input");
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes exactly one input");
                inputs[0]
            }
            GateKind::Mux => {
                assert_eq!(inputs.len(), 3, "MUX takes [sel, a, b]");
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// The `.bench`-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Mux => "MUX",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One gate: a kind plus its input nets. The gate drives the net whose
/// index is `num_inputs + position`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The logic function.
    pub kind: GateKind,
    /// Input nets, in order (order matters for [`GateKind::Mux`]).
    pub inputs: Vec<Net>,
}

/// A combinational gate-level netlist.
///
/// Gates are stored in topological order by construction: a gate may
/// only reference primary inputs or earlier gates, which the builder
/// enforces, so simulation is a single forward pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Netlist {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<Net>,
}

impl Netlist {
    /// Starts building a netlist with `num_inputs` primary inputs and
    /// `num_outputs` outputs.
    pub fn builder(num_inputs: usize, num_outputs: usize) -> NetlistBuilder {
        NetlistBuilder {
            num_inputs,
            gates: Vec::new(),
            outputs: vec![None; num_outputs],
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output nets.
    pub fn outputs(&self) -> &[Net] {
        &self.outputs
    }

    /// Total number of nets (inputs + gates).
    pub fn num_nets(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// Simulates the netlist on an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn simulate(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.simulate_nets(inputs);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Simulates and returns the value of **every** net (inputs first,
    /// then each gate output in order). Useful for debugging and for
    /// the locking attacks that inspect internal wires.
    pub fn simulate_nets(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input width mismatch");
        let mut values = Vec::with_capacity(self.num_nets());
        values.extend_from_slice(inputs);
        let mut gate_in = Vec::new();
        for gate in &self.gates {
            gate_in.clear();
            gate_in.extend(gate.inputs.iter().map(|n| values[n.index()]));
            values.push(gate.kind.eval(&gate_in));
        }
        values
    }

    /// Logic depth: the longest input-to-output path measured in gates.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.num_nets()];
        for (i, gate) in self.gates.iter().enumerate() {
            let d = gate
                .inputs
                .iter()
                .map(|n| depth[n.index()])
                .max()
                .unwrap_or(0);
            depth[self.num_inputs + i] = d + 1;
        }
        self.outputs
            .iter()
            .map(|o| depth[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// Exhaustively compares two netlists (small input counts only).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `num_inputs > 20`.
    pub fn equivalent_exhaustive(&self, other: &Netlist) -> bool {
        assert_eq!(self.num_inputs, other.num_inputs, "input width mismatch");
        assert_eq!(self.num_outputs(), other.num_outputs(), "output count");
        assert!(
            self.num_inputs <= 20,
            "exhaustive check limited to 20 inputs"
        );
        for v in 0..(1u64 << self.num_inputs) {
            let bits: Vec<bool> = (0..self.num_inputs).map(|i| v >> i & 1 == 1).collect();
            if self.simulate(&bits) != other.simulate(&bits) {
                return false;
            }
        }
        true
    }
}

/// Incremental builder enforcing topological order.
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<Option<Net>>,
}

impl NetlistBuilder {
    /// The net of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input(&self, i: usize) -> Net {
        assert!(i < self.num_inputs, "input index out of range");
        Net(i as u32)
    }

    /// Adds a gate and returns the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if an input net does not exist yet (topological-order
    /// violation) or the gate arity is invalid for its kind.
    pub fn gate(&mut self, kind: GateKind, inputs: Vec<Net>) -> Net {
        let limit = (self.num_inputs + self.gates.len()) as u32;
        for n in &inputs {
            assert!(n.0 < limit, "gate references a net that does not exist yet");
        }
        match kind {
            GateKind::Not | GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "{kind} takes exactly one input")
            }
            GateKind::Mux => assert_eq!(inputs.len(), 3, "MUX takes [sel, a, b]"),
            _ => assert!(!inputs.is_empty(), "{kind} needs at least one input"),
        }
        self.gates.push(Gate { kind, inputs });
        Net(limit)
    }

    /// Connects output `idx` to `net`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `net` does not exist.
    pub fn set_output(&mut self, idx: usize, net: Net) {
        assert!(idx < self.outputs.len(), "output index out of range");
        assert!(
            (net.0 as usize) < self.num_inputs + self.gates.len(),
            "output references a net that does not exist"
        );
        self.outputs[idx] = Some(net);
    }

    /// Current number of nets.
    pub fn num_nets(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// Finalizes the netlist.
    ///
    /// # Panics
    ///
    /// Panics if any output is unconnected.
    pub fn build(self) -> Netlist {
        let outputs = self
            .outputs
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("output {i} not connected")))
            .collect();
        Netlist {
            num_inputs: self.num_inputs,
            gates: self.gates,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        // inputs: a, b, cin; outputs: sum, cout
        let mut b = Netlist::builder(3, 2);
        let (a, x, cin) = (b.input(0), b.input(1), b.input(2));
        let ab = b.gate(GateKind::Xor, vec![a, x]);
        let sum = b.gate(GateKind::Xor, vec![ab, cin]);
        let and1 = b.gate(GateKind::And, vec![a, x]);
        let and2 = b.gate(GateKind::And, vec![ab, cin]);
        let cout = b.gate(GateKind::Or, vec![and1, and2]);
        b.set_output(0, sum);
        b.set_output(1, cout);
        b.build()
    }

    #[test]
    fn full_adder_truth_table() {
        let fa = full_adder();
        for a in [false, true] {
            for x in [false, true] {
                for c in [false, true] {
                    let out = fa.simulate(&[a, x, c]);
                    let total = a as u8 + x as u8 + c as u8;
                    assert_eq!(out[0], total % 2 == 1, "sum for {a}{x}{c}");
                    assert_eq!(out[1], total >= 2, "carry for {a}{x}{c}");
                }
            }
        }
    }

    #[test]
    fn gate_kind_semantics() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Mux.eval(&[false, true, false]));
        assert!(!GateKind::Mux.eval(&[true, true, false]));
    }

    #[test]
    fn depth_of_adder() {
        let fa = full_adder();
        assert_eq!(fa.depth(), 3); // xor -> and -> or path
        assert_eq!(fa.num_gates(), 5);
        assert_eq!(fa.num_nets(), 8);
    }

    #[test]
    fn simulate_nets_exposes_wires() {
        let fa = full_adder();
        let nets = fa.simulate_nets(&[true, true, false]);
        assert_eq!(nets.len(), 8);
        assert!(nets[0]);
        assert!(!nets[3]); // a xor b
        assert!(nets[5]); // a and b
    }

    #[test]
    fn exhaustive_equivalence_detects_difference() {
        let fa = full_adder();
        assert!(fa.equivalent_exhaustive(&fa));
        // An adder with the carry gates swapped to NAND differs.
        let mut b = Netlist::builder(3, 2);
        let (a, x, cin) = (b.input(0), b.input(1), b.input(2));
        let ab = b.gate(GateKind::Xor, vec![a, x]);
        let sum = b.gate(GateKind::Xor, vec![ab, cin]);
        let and1 = b.gate(GateKind::Nand, vec![a, x]);
        let and2 = b.gate(GateKind::And, vec![ab, cin]);
        let cout = b.gate(GateKind::Or, vec![and1, and2]);
        b.set_output(0, sum);
        b.set_output(1, cout);
        let broken = b.build();
        assert!(!fa.equivalent_exhaustive(&broken));
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut b = Netlist::builder(1, 1);
        b.gate(GateKind::Not, vec![Net(5)]);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn unconnected_output_panics() {
        Netlist::builder(1, 1).build();
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn not_gate_arity_checked() {
        let mut b = Netlist::builder(2, 1);
        let (x, y) = (b.input(0), b.input(1));
        b.gate(GateKind::Not, vec![x, y]);
    }
}
