//! Circuit generators: random DAGs, bounded-depth AC⁰ circuits and
//! arithmetic benchmarks.

use crate::netlist::{GateKind, Net, Netlist};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a random combinational DAG circuit.
///
/// Each gate picks a random 2-input kind (AND/OR/NAND/NOR/XOR/XNOR) and
/// two random existing nets, with a bias toward recent nets so the
/// circuit has meaningful depth. The outputs are the last
/// `num_outputs` gate nets.
///
/// # Panics
///
/// Panics if `num_inputs == 0`, `num_gates < num_outputs`, or
/// `num_outputs == 0`.
pub fn random_circuit<R: Rng + ?Sized>(
    num_inputs: usize,
    num_gates: usize,
    num_outputs: usize,
    rng: &mut R,
) -> Netlist {
    assert!(num_inputs > 0, "need at least one input");
    assert!(num_outputs > 0, "need at least one output");
    assert!(
        num_gates >= num_outputs,
        "need at least one gate per output"
    );
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let mut b = Netlist::builder(num_inputs, num_outputs);
    for _ in 0..num_gates {
        let avail = b.num_nets();
        // Bias input choice toward recent nets: pick from the top half
        // with probability 1/2.
        let pick = |rng: &mut R| -> Net {
            let idx = if avail > 2 && rng.gen_bool(0.5) {
                rng.gen_range(avail / 2..avail)
            } else {
                rng.gen_range(0..avail)
            };
            if idx < num_inputs {
                b_input(idx)
            } else {
                Net(idx as u32)
            }
        };
        let x = pick(rng);
        let y = pick(rng);
        let kind = *kinds.choose(rng).expect("non-empty kinds");
        b.gate(kind, vec![x, y]);
    }
    let total = b.num_nets();
    for o in 0..num_outputs {
        b.set_output(o, Net((total - num_outputs + o) as u32));
    }
    b.build()
}

// Small helper: builder inputs are just the first nets.
fn b_input(i: usize) -> Net {
    Net(i as u32)
}

/// Generates a depth-`d` AC⁰-style circuit: alternating layers of
/// unbounded-fan-in AND and OR gates over (possibly negated) inputs —
/// the concept class the paper's logic-locking discussion targets
/// ("poly(n)-size depth-d circuits").
///
/// Layer widths shrink geometrically from `width` to a single output.
///
/// # Panics
///
/// Panics if `num_inputs == 0`, `depth == 0` or `width == 0`.
pub fn ac0_circuit<R: Rng + ?Sized>(
    num_inputs: usize,
    depth: usize,
    width: usize,
    rng: &mut R,
) -> Netlist {
    assert!(num_inputs > 0 && depth > 0 && width > 0);
    let mut b = Netlist::builder(num_inputs, 1);
    // Literal layer: inputs and their negations.
    let mut prev: Vec<Net> = (0..num_inputs).map(b_input).collect();
    let negs: Vec<Net> = (0..num_inputs)
        .map(|i| b.gate(GateKind::Not, vec![b_input(i)]))
        .collect();
    prev.extend(negs);

    let mut layer_width = width;
    for level in 0..depth {
        let kind = if level % 2 == 0 {
            GateKind::And
        } else {
            GateKind::Or
        };
        let this_width = if level + 1 == depth {
            1
        } else {
            layer_width.max(1)
        };
        let fan_in = prev.len().clamp(2, 4);
        let mut layer = Vec::with_capacity(this_width);
        for _ in 0..this_width {
            let mut ins = Vec::with_capacity(fan_in);
            for _ in 0..fan_in {
                ins.push(*prev.choose(rng).expect("non-empty layer"));
            }
            ins.dedup();
            layer.push(b.gate(kind, ins));
        }
        prev = layer;
        layer_width = (layer_width / 2).max(1);
    }
    let out = prev[0];
    b.set_output(0, out);
    b.build()
}

/// A `width`-bit ripple-carry adder: inputs `a[0..width] ++ b[0..width]`,
/// outputs `sum[0..width] ++ [carry]`.
pub fn ripple_adder(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = Netlist::builder(2 * width, width + 1);
    let mut carry: Option<Net> = None;
    for i in 0..width {
        let a = b_input(i);
        let x = b_input(width + i);
        let axb = b.gate(GateKind::Xor, vec![a, x]);
        let (sum, cout) = match carry {
            None => {
                let cout = b.gate(GateKind::And, vec![a, x]);
                (axb, cout)
            }
            Some(c) => {
                let sum = b.gate(GateKind::Xor, vec![axb, c]);
                let t1 = b.gate(GateKind::And, vec![a, x]);
                let t2 = b.gate(GateKind::And, vec![axb, c]);
                let cout = b.gate(GateKind::Or, vec![t1, t2]);
                (sum, cout)
            }
        };
        b.set_output(i, sum);
        carry = Some(cout);
    }
    b.set_output(width, carry.expect("width > 0"));
    b.build()
}

/// A `width`-bit unsigned comparator: output 1 iff `a > b`
/// (inputs `a[0..width] ++ b[0..width]`, little-endian).
pub fn comparator(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = Netlist::builder(2 * width, 1);
    // gt_i = a_i AND NOT b_i; eq_i = XNOR(a_i, b_i).
    // a > b = OR_i (gt_i AND eq_{i+1..}).
    let mut terms = Vec::new();
    for i in 0..width {
        let a = b_input(i);
        let x = b_input(width + i);
        let nb = b.gate(GateKind::Not, vec![x]);
        let gt = b.gate(GateKind::And, vec![a, nb]);
        // AND of equalities above bit i.
        let mut term = gt;
        for j in (i + 1)..width {
            let aj = b_input(j);
            let bj = b_input(width + j);
            let eq = b.gate(GateKind::Xnor, vec![aj, bj]);
            term = b.gate(GateKind::And, vec![term, eq]);
        }
        terms.push(term);
    }
    let out = if terms.len() == 1 {
        terms[0]
    } else {
        b.gate(GateKind::Or, terms)
    };
    b.set_output(0, out);
    b.build()
}

/// A balanced XOR (parity) tree over `width` inputs.
pub fn parity_tree(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = Netlist::builder(width, 1);
    let mut layer: Vec<Net> = (0..width).map(b_input).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.gate(GateKind::Xor, vec![pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let out = layer[0];
    b.set_output(0, out);
    b.build()
}

/// The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
pub fn c17() -> Netlist {
    let mut b = Netlist::builder(5, 2);
    let (i1, i2, i3, i4, i5) = (b_input(0), b_input(1), b_input(2), b_input(3), b_input(4));
    let g1 = b.gate(GateKind::Nand, vec![i1, i3]);
    let g2 = b.gate(GateKind::Nand, vec![i3, i4]);
    let g3 = b.gate(GateKind::Nand, vec![i2, g2]);
    let g4 = b.gate(GateKind::Nand, vec![g2, i5]);
    let g5 = b.gate(GateKind::Nand, vec![g1, g3]);
    let g6 = b.gate(GateKind::Nand, vec![g3, g4]);
    b.set_output(0, g5);
    b.set_output(1, g6);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_circuit_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = random_circuit(8, 40, 3, &mut rng);
        assert_eq!(c.num_inputs(), 8);
        assert_eq!(c.num_gates(), 40);
        assert_eq!(c.num_outputs(), 3);
        // Simulation runs without panicking on arbitrary inputs.
        let out = c.simulate(&[true; 8]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn random_circuits_differ_across_seeds() {
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = random_circuit(6, 30, 1, &mut r1);
        let b = random_circuit(6, 30, 1, &mut r2);
        assert!(!a.equivalent_exhaustive(&b) || a == b);
    }

    #[test]
    fn adder_adds() {
        let add = ripple_adder(4);
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut bits = Vec::new();
                for i in 0..4 {
                    bits.push(a >> i & 1 == 1);
                }
                for i in 0..4 {
                    bits.push(b >> i & 1 == 1);
                }
                let out = add.simulate(&bits);
                let mut got = 0u64;
                for (i, &o) in out.iter().enumerate() {
                    if o {
                        got |= 1 << i;
                    }
                }
                assert_eq!(got, a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let cmp = comparator(3);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut bits = Vec::new();
                for i in 0..3 {
                    bits.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    bits.push(b >> i & 1 == 1);
                }
                assert_eq!(cmp.simulate(&bits)[0], a > b, "{a} > {b}");
            }
        }
    }

    #[test]
    fn parity_tree_computes_parity() {
        let p = parity_tree(7);
        for v in 0u64..128 {
            let bits: Vec<bool> = (0..7).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(p.simulate(&bits)[0], v.count_ones() % 2 == 1);
        }
        assert!(p.depth() <= 3);
    }

    #[test]
    fn c17_matches_reference_vectors() {
        let c = c17();
        assert_eq!(c.num_gates(), 6);
        // All-zero input: g1=g2=1, g3=NAND(0,1)=1, g4=NAND(1,0)=1,
        // g5=NAND(1,1)=0, g6=NAND(1,1)=0.
        assert_eq!(c.simulate(&[false; 5]), vec![false, false]);
        // All-one input: g1=g2=0, g3=NAND(1,0)=1, g4=NAND(0,1)=1,
        // g5=NAND(0,1)=1, g6=NAND(1,1)=0.
        assert_eq!(c.simulate(&[true; 5]), vec![true, false]);
        // i2=1, i3=1, i4=1 -> g2=NAND(1,1)=0, g3=NAND(1,0)=1,
        // g1=NAND(0,1)=1, g5=NAND(1,1)=0; g4=NAND(0,0)=1 wait i5=0:
        // g4=NAND(0,0)=1, g6=NAND(1,1)=0.
        assert_eq!(
            c.simulate(&[false, true, true, true, false]),
            vec![false, false]
        );
    }

    #[test]
    fn ac0_circuit_has_bounded_depth() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = ac0_circuit(10, 3, 8, &mut rng);
        // Depth = NOT layer (1) + 3 logic layers.
        assert!(c.depth() <= 4, "depth {}", c.depth());
        assert_eq!(c.num_outputs(), 1);
        let _ = c.simulate(&[false; 10]);
    }
}
