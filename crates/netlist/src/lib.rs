//! Gate-level netlists for the logic-locking experiments.
//!
//! The paper's logic-locking sections (II-A, IV-A, V-A) reason about
//! combinational circuits (`AC⁰`-style netlists), SAT-based
//! deobfuscation and online-ML attacks. This crate provides the circuit
//! substrate those attacks run on:
//!
//! - [`Netlist`]: a combinational gate-level netlist with primary
//!   inputs, named outputs and a topologically ordered gate list,
//! - simulation ([`Netlist::simulate`]),
//! - generators ([`generate`]): random DAG circuits, bounded-depth
//!   `AC⁰` circuits, adders, comparators, parity trees and the classic
//!   c17 benchmark,
//! - Tseitin CNF encoding ([`cnf`]) for the SAT attack,
//! - the ISCAS-ish `.bench` text format ([`bench_format`]).
//!
//! # Quickstart
//!
//! ```
//! use mlam_netlist::{GateKind, Netlist};
//!
//! let mut b = Netlist::builder(2, 1);
//! let (a, c) = (b.input(0), b.input(1));
//! let g = b.gate(GateKind::And, vec![a, c]);
//! b.set_output(0, g);
//! let net = b.build();
//! assert_eq!(net.simulate(&[true, true]), vec![true]);
//! assert_eq!(net.simulate(&[true, false]), vec![false]);
//! ```

pub mod bdd;
pub mod bench_format;
pub mod cnf;
pub mod generate;
mod netlist;

pub use bdd::{equivalent_bdd, BddManager, BddRef};
pub use cnf::{Cnf, TseitinEncoding};
pub use netlist::{Gate, GateKind, Net, Netlist, NetlistBuilder};
