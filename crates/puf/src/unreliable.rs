//! Device-level fault injection: any [`PufModel`] behind an unreliable
//! measurement channel.
//!
//! [`UnreliablePuf`] sits *below* the oracle layer: where
//! `mlam-learn`'s `UnreliableOracle` models faults in the attacker's
//! query interface, this wrapper models them in the device itself —
//! noisy evaluation now also flips, drops or refuses readings
//! according to a seeded [`FaultModel`]. Because the wrapper still
//! implements [`PufModel`], the whole existing collection stack works
//! unchanged on top of it: [`crate::crp::collect_noisy`] sees the raw
//! faulty stream, and [`crate::crp::collect_stable`] /
//! [`crate::crp::collect_stable_par`] become exactly the paper's
//! "stable CRP" lab procedure applied to a faulty device — repeated
//! measurement plus majority screening as fault *recovery*.
//!
//! Fault decisions are drawn from the evaluation RNG (one `u64` per
//! reading), so they are precisely as deterministic as the noise
//! stream: under the split-seeded parallel collectors every fault is a
//! pure function of `(root seed, candidate index)` and runs are
//! bit-identical at any thread count.
//!
//! The **ideal** response ([`mlam_boolean::BooleanFunction::eval`] and
//! [`PufModel::eval_batch`]) stays fault-free by design: it is the
//! ground-truth concept attacks are measured against, not a physical
//! measurement.

use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use mlam_harness::{FaultModel, RetryPolicy};
use mlam_telemetry::counter;
use rand::Rng;

/// A [`PufModel`] whose noisy evaluations pass through a seeded fault
/// model with bounded-retry recovery.
///
/// # Example
///
/// ```
/// use mlam_harness::{FaultModel, RetryPolicy};
/// use mlam_puf::{ArbiterPuf, PufModel, UnreliablePuf};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let device = UnreliablePuf::new(
///     ArbiterPuf::sample(64, 0.0, &mut rng),
///     FaultModel::new(9, 0.05, 0.02),
///     RetryPolicy::retries(4),
/// );
/// // The stable-CRP screen recovers reliable pairs from the faulty
/// // stream — the paper's lab procedure as fault recovery.
/// let stable = mlam_puf::crp::collect_stable(&device, 100, 7, 1.0, &mut rng);
/// assert!(!stable.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct UnreliablePuf<P> {
    inner: P,
    faults: FaultModel,
    policy: RetryPolicy,
}

impl<P> UnreliablePuf<P> {
    /// Wraps `inner` with the given fault model and retry policy.
    ///
    /// Only the bounded-retry part of the policy applies at device
    /// level (a lost reading is retried up to
    /// [`RetryPolicy::max_attempts`] times, counting backoff units);
    /// majority voting across readings is the collection layer's job —
    /// use [`crate::crp::collect_stable`] or the oracle-level wrapper.
    pub fn new(inner: P, faults: FaultModel, policy: RetryPolicy) -> Self {
        UnreliablePuf {
            inner,
            faults,
            policy,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the device.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// The fault model readings pass through.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// The retry policy applied per noisy evaluation.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

impl<P: BooleanFunction> BooleanFunction for UnreliablePuf<P> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    /// The **ideal** (fault-free) response of the wrapped device.
    fn eval(&self, x: &BitVec) -> bool {
        self.inner.eval(x)
    }
}

impl<P: PufModel + Sync> PufModel for UnreliablePuf<P> {
    fn challenge_bits(&self) -> usize {
        self.inner.challenge_bits()
    }

    /// One noisy measurement through the fault channel.
    ///
    /// Each reading draws the device's own noise and then a fault
    /// decision from `rng`. Lost readings (drops, outages) are retried
    /// up to the policy's attempt budget with backoff counted; if every
    /// attempt is lost the measurement degrades to the last raw
    /// reading (counted as `harness.retry.exhausted`).
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let mut last = None;
        let mut losses = 0u32;
        for _attempt in 0..self.policy.max_attempts {
            counter!("harness.retry.attempts", 1);
            let raw = self.inner.eval_noisy(challenge, rng);
            last = Some(raw);
            match self.faults.roll_with_rng(rng).apply(raw) {
                Some(bit) => return bit,
                None => {
                    counter!(
                        "harness.retry.backoff_units",
                        self.policy.backoff.units(losses)
                    );
                    losses += 1;
                }
            }
        }
        counter!("harness.retry.exhausted", 1);
        last.expect("max_attempts is at least 1")
    }

    /// Ideal batch evaluation — delegates to the wrapped device's
    /// (possibly bit-sliced) fault-free path.
    fn eval_batch(&self, challenges: &[BitVec]) -> Vec<bool>
    where
        Self: Sized + Sync,
    {
        self.inner.eval_batch(challenges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use crate::crp::{collect_noisy, collect_stable, collect_stable_par};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(flip: f64, drop: f64, retries: u32) -> UnreliablePuf<ArbiterPuf> {
        let mut rng = StdRng::seed_from_u64(1);
        UnreliablePuf::new(
            ArbiterPuf::sample(48, 0.0, &mut rng),
            FaultModel::new(33, flip, drop),
            RetryPolicy::retries(retries),
        )
    }

    #[test]
    fn ideal_paths_are_fault_free() {
        let dev = device(0.5, 0.5, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let challenges: Vec<BitVec> = (0..200).map(|_| BitVec::random(48, &mut rng)).collect();
        let batch = dev.eval_batch(&challenges);
        for (c, r) in challenges.iter().zip(&batch) {
            assert_eq!(dev.eval(c), *r);
            assert_eq!(dev.inner().eval(c), *r);
        }
    }

    #[test]
    fn noisy_stream_carries_the_flip_rate() {
        let dev = device(0.3, 0.0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let raw = collect_noisy(&dev, 2000, &mut rng);
        let wrong = raw.iter().filter(|(c, r)| dev.eval(c) != *r).count() as f64 / raw.len() as f64;
        assert!((wrong - 0.3).abs() < 0.05, "observed flip rate {wrong}");
    }

    #[test]
    fn stable_screen_recovers_from_faults() {
        let dev = device(0.15, 0.1, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let stable = collect_stable(&dev, 200, 9, 1.0, &mut rng);
        // Unanimously stable CRPs survive only where faults never hit,
        // so they agree with the ideal device.
        let wrong = stable.iter().filter(|(c, r)| dev.eval(c) != *r).count();
        assert!(
            (wrong as f64) < stable.len() as f64 * 0.02,
            "{wrong}/{} stable CRPs disagree",
            stable.len()
        );
        assert!(!stable.is_empty());
    }

    #[test]
    fn split_seeded_collection_is_deterministic() {
        let dev = device(0.2, 0.15, 5);
        let a = collect_stable_par(&dev, 120, 7, 1.0, 99);
        let b = collect_stable_par(&dev, 120, 7, 1.0, 99);
        assert_eq!(a, b, "same (device, seed) must give the same set");
        assert!(!a.is_empty());
    }

    #[test]
    fn full_drop_degrades_to_last_reading() {
        // Drops never corrupt bits, so even a channel that loses every
        // reading still reports the (noise-free) true response via the
        // last-gasp fallback.
        let dev = device(0.0, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let c = BitVec::random(48, &mut rng);
            assert_eq!(dev.eval_noisy(&c, &mut rng), dev.eval(&c));
        }
    }
}
