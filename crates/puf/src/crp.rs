//! Challenge–response pairs (CRPs) and their collection.
//!
//! The paper's experiments run on "noiseless and stable CRPs" collected
//! from silicon. [`collect_stable`] reproduces that lab procedure on the
//! simulators: evaluate each challenge repeatedly, keep only challenges
//! whose response is unanimous (or majority-stable), and record the
//! majority response.

use crate::PufModel;
use mlam_boolean::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One challenge–response pair.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Crp {
    /// The applied challenge.
    pub challenge: BitVec,
    /// The recorded response bit.
    pub response: bool,
}

impl Crp {
    /// Creates a CRP.
    pub fn new(challenge: BitVec, response: bool) -> Self {
        Crp {
            challenge,
            response,
        }
    }
}

/// A set of CRPs collected from one PUF instance.
///
/// Stores the challenge length and provides conversions to the
/// `(BitVec, bool)` slices the learning stack consumes.
///
/// # Example
///
/// ```
/// use mlam_puf::{ArbiterPuf, CrpSet, PufModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
/// let set = mlam_puf::crp::collect_uniform(&puf, 500, &mut rng);
/// let (train, test) = set.split(0.8, &mut rng);
/// assert_eq!(train.len() + test.len(), 500);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrpSet {
    n: usize,
    crps: Vec<Crp>,
}

impl CrpSet {
    /// Creates an empty set for `n`-bit challenges.
    pub fn new(n: usize) -> Self {
        CrpSet {
            n,
            crps: Vec::new(),
        }
    }

    /// Builds a set from parts.
    ///
    /// # Panics
    ///
    /// Panics if any challenge length differs from `n`.
    pub fn from_crps(n: usize, crps: Vec<Crp>) -> Self {
        for crp in &crps {
            assert_eq!(crp.challenge.len(), n, "challenge length mismatch");
        }
        CrpSet { n, crps }
    }

    /// Challenge length in bits.
    pub fn challenge_bits(&self) -> usize {
        self.n
    }

    /// Number of CRPs.
    pub fn len(&self) -> usize {
        self.crps.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.crps.is_empty()
    }

    /// Appends a CRP.
    ///
    /// # Panics
    ///
    /// Panics if the challenge length differs from the set's.
    pub fn push(&mut self, crp: Crp) {
        assert_eq!(crp.challenge.len(), self.n, "challenge length mismatch");
        self.crps.push(crp);
    }

    /// The CRPs.
    pub fn crps(&self) -> &[Crp] {
        &self.crps
    }

    /// Iterator over `(challenge, response)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&BitVec, bool)> {
        self.crps.iter().map(|c| (&c.challenge, c.response))
    }

    /// Clones the data into the `(BitVec, bool)` form used by
    /// `mlam-boolean` and `mlam-learn`.
    pub fn to_labeled(&self) -> Vec<(BitVec, bool)> {
        self.crps
            .iter()
            .map(|c| (c.challenge.clone(), c.response))
            .collect()
    }

    /// Fraction of responses equal to 1 (uniformity).
    pub fn ones_fraction(&self) -> f64 {
        if self.crps.is_empty() {
            return 0.0;
        }
        self.crps.iter().filter(|c| c.response).count() as f64 / self.crps.len() as f64
    }

    /// Randomly splits into `(train, test)` with `train_fraction` of the
    /// CRPs in the first part.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `[0, 1]`.
    pub fn split<R: Rng + ?Sized>(&self, train_fraction: f64, rng: &mut R) -> (CrpSet, CrpSet) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction must be in [0,1]"
        );
        let mut idx: Vec<usize> = (0..self.crps.len()).collect();
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let cut = (self.crps.len() as f64 * train_fraction).round() as usize;
        let train = idx[..cut].iter().map(|&i| self.crps[i].clone()).collect();
        let test = idx[cut..].iter().map(|&i| self.crps[i].clone()).collect();
        (
            CrpSet {
                n: self.n,
                crps: train,
            },
            CrpSet {
                n: self.n,
                crps: test,
            },
        )
    }

    /// Takes the first `count` CRPs as a new set (for CRP-budget sweeps).
    pub fn take(&self, count: usize) -> CrpSet {
        CrpSet {
            n: self.n,
            crps: self.crps.iter().take(count).cloned().collect(),
        }
    }
}

impl Extend<Crp> for CrpSet {
    fn extend<T: IntoIterator<Item = Crp>>(&mut self, iter: T) {
        for crp in iter {
            self.push(crp);
        }
    }
}

/// Serialization mirror of [`CrpSet`] using string bit patterns
/// (readable and stable across versions).
#[derive(Serialize, Deserialize)]
struct CrpSetRepr {
    n: usize,
    crps: Vec<(String, bool)>,
}

impl Serialize for CrpSet {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let repr = CrpSetRepr {
            n: self.n,
            crps: self
                .crps
                .iter()
                .map(|c| (c.challenge.to_string(), c.response))
                .collect(),
        };
        repr.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for CrpSet {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = CrpSetRepr::deserialize(deserializer)?;
        let crps = repr
            .crps
            .into_iter()
            .map(|(s, r)| {
                let bits: Vec<bool> = s.chars().map(|ch| ch == '1').collect();
                if bits.len() != repr.n {
                    return Err(serde::de::Error::custom("challenge length mismatch"));
                }
                Ok(Crp::new(BitVec::from_bools(&bits), r))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CrpSet { n: repr.n, crps })
    }
}

/// Collects `count` CRPs at uniformly random challenges using **ideal**
/// (noise-free) evaluations.
///
/// Challenges are drawn sequentially from `rng` (consuming exactly the
/// same stream as always), then evaluated as one
/// [`PufModel::eval_batch`] across `MLAM_THREADS` workers — the
/// returned set is bit-identical at any thread count.
pub fn collect_uniform<P: PufModel + Sync, R: Rng + ?Sized>(
    puf: &P,
    count: usize,
    rng: &mut R,
) -> CrpSet {
    let n = puf.challenge_bits();
    let challenges: Vec<BitVec> = (0..count).map(|_| BitVec::random(n, rng)).collect();
    collect_uniform_batch(puf, challenges)
}

/// Evaluates caller-supplied challenges as one [`PufModel::eval_batch`]
/// and packages the results as a [`CrpSet`].
///
/// This is the entry point for callers that draw their challenges
/// themselves (biased, correlated, or replayed sets) but still want the
/// bit-sliced batch path the linear-delay models provide; responses are
/// ideal (noise-free) and bit-identical at any thread count.
pub fn collect_uniform_batch<P: PufModel + Sync>(puf: &P, challenges: Vec<BitVec>) -> CrpSet {
    let n = puf.challenge_bits();
    let responses = puf.eval_batch(&challenges);
    CrpSet::from_crps(
        n,
        challenges
            .into_iter()
            .zip(responses)
            .map(|(c, r)| Crp::new(c, r))
            .collect(),
    )
}

/// Collects `count` CRPs with **noisy** single-shot evaluations — the
/// raw data an attacker without repeated-measurement access sees.
pub fn collect_noisy<P: PufModel, R: Rng + ?Sized>(puf: &P, count: usize, rng: &mut R) -> CrpSet {
    let n = puf.challenge_bits();
    let mut set = CrpSet::new(n);
    for _ in 0..count {
        let c = BitVec::random(n, rng);
        let r = puf.eval_noisy(&c, rng);
        set.push(Crp::new(c, r));
    }
    set
}

/// Collects up to `count` **stable** CRPs: each uniformly random
/// challenge is evaluated `repeats` times and kept only when at least
/// `stability` of the evaluations agree; the recorded response is the
/// majority. This reproduces the paper's "noiseless and stable CRPs".
///
/// Challenges that fail the stability screen are skipped (at most
/// `10 * count` candidates are tried, so the function terminates even
/// for extremely noisy devices; the returned set may then be smaller
/// than `count`).
///
/// # Panics
///
/// Panics if `repeats == 0` or `stability ∉ (0.5, 1.0]`.
pub fn collect_stable<P: PufModel, R: Rng + ?Sized>(
    puf: &P,
    count: usize,
    repeats: usize,
    stability: f64,
    rng: &mut R,
) -> CrpSet {
    assert!(repeats > 0, "repeats must be positive");
    assert!(
        stability > 0.5 && stability <= 1.0,
        "stability threshold must be in (0.5, 1.0]"
    );
    let n = puf.challenge_bits();
    let mut set = CrpSet::new(n);
    let mut attempts = 0usize;
    while set.len() < count && attempts < count.saturating_mul(10) {
        attempts += 1;
        let c = BitVec::random(n, rng);
        let ones = (0..repeats).filter(|_| puf.eval_noisy(&c, rng)).count();
        let majority = ones * 2 >= repeats;
        let agree = if majority { ones } else { repeats - ones };
        if agree as f64 / repeats as f64 >= stability {
            set.push(Crp::new(c, majority));
        }
    }
    set
}

/// Parallel stable-CRP collection from an explicit root seed.
///
/// Same screening procedure as [`collect_stable`], but every candidate
/// challenge derives its own RNG from `split_seed(seed, candidate
/// index)` instead of sharing one sequential stream, so candidates can
/// be screened concurrently across `MLAM_THREADS` workers. Candidates
/// are accepted **in index order** until `count` stable CRPs are found
/// (or `10 * count` candidates have been tried), which makes the
/// returned set a pure function of `(puf, seed)` — bit-identical at
/// any thread count, though *different* from the [`collect_stable`]
/// stream for the same underlying seed.
///
/// # Panics
///
/// Panics if `repeats == 0` or `stability ∉ (0.5, 1.0]`.
pub fn collect_stable_par<P: PufModel + Sync>(
    puf: &P,
    count: usize,
    repeats: usize,
    stability: f64,
    seed: u64,
) -> CrpSet {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(repeats > 0, "repeats must be positive");
    assert!(
        stability > 0.5 && stability <= 1.0,
        "stability threshold must be in (0.5, 1.0]"
    );
    let n = puf.challenge_bits();
    let max_attempts = count.saturating_mul(10);
    let mut set = CrpSet::new(n);
    let mut next_candidate = 0usize;
    // Screen candidates in fixed-size waves; each candidate is an
    // independent task, accepted in index order, so neither the wave
    // size nor the thread count can change which CRPs are kept.
    const WAVE: usize = 512;
    while set.len() < count && next_candidate < max_attempts {
        let wave = WAVE.min(max_attempts - next_candidate);
        let screened = mlam_par::par_map_index(wave, |offset| {
            let index = next_candidate + offset;
            let mut rng = StdRng::seed_from_u64(mlam_par::split_seed(seed, index as u64));
            let c = BitVec::random(n, &mut rng);
            let ones = (0..repeats)
                .filter(|_| puf.eval_noisy(&c, &mut rng))
                .count();
            let majority = ones * 2 >= repeats;
            let agree = if majority { ones } else { repeats - ones };
            (agree as f64 / repeats as f64 >= stability).then(|| Crp::new(c, majority))
        });
        for crp in screened.into_iter().flatten() {
            if set.len() == count {
                break;
            }
            set.push(crp);
        }
        next_candidate += wave;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use mlam_boolean::BooleanFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn collect_uniform_matches_ideal_responses() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::sample(16, 0.0, &mut rng);
        let set = collect_uniform(&puf, 200, &mut rng);
        assert_eq!(set.len(), 200);
        for (c, r) in set.iter() {
            assert_eq!(puf.eval(c), r);
        }
    }

    #[test]
    fn stable_collection_filters_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::sample(64, 0.4, &mut rng);
        let set = collect_stable(&puf, 300, 11, 1.0, &mut rng);
        // Unanimously stable CRPs must agree with the ideal response.
        let mut wrong = 0;
        for (c, r) in set.iter() {
            if puf.eval(c) != r {
                wrong += 1;
            }
        }
        assert!(
            (wrong as f64) < set.len() as f64 * 0.02,
            "{wrong}/{} stable CRPs disagree with ideal",
            set.len()
        );
        assert!(!set.is_empty());
    }

    fn assert_batch_matches_eval<P: PufModel + Sync>(puf: &P, challenges: &[BitVec], ctx: &str) {
        let batch = puf.eval_batch(challenges);
        assert_eq!(batch.len(), challenges.len(), "{ctx}");
        for (i, (c, r)) in challenges.iter().zip(&batch).enumerate() {
            assert_eq!(puf.eval(c), *r, "{ctx}: challenge {i}");
        }
    }

    #[test]
    fn eval_batch_matches_sequential_eval() {
        use crate::bistable_ring::{BistableRingPuf, BrPufConfig};
        use crate::feed_forward::FeedForwardArbiterPuf;
        use crate::interpose::InterposePuf;
        use crate::xor_arbiter::XorArbiterPuf;

        let mut rng = StdRng::seed_from_u64(7);
        // Batch sizes straddle the 64-lane block width (tails included),
        // challenge lengths straddle the 64-bit word width.
        for &(n, count) in &[
            (24usize, 300usize),
            (64, 64),
            (66, 129),
            (10, 63),
            (33, 1),
            (130, 70),
        ] {
            let ctx = format!("n={n} count={count}");
            let challenges: Vec<BitVec> = (0..count).map(|_| BitVec::random(n, &mut rng)).collect();

            let arb = ArbiterPuf::sample(n, 0.0, &mut rng);
            assert_batch_matches_eval(&arb, &challenges, &format!("arbiter {ctx}"));

            let xor = XorArbiterPuf::sample(n, 3, 0.0, &mut rng);
            assert_batch_matches_eval(&xor, &challenges, &format!("xor {ctx}"));

            let ff = FeedForwardArbiterPuf::sample_spread(n, 2, 3, 0.0, &mut rng);
            assert_batch_matches_eval(&ff, &challenges, &format!("feed-forward {ctx}"));

            let ipuf = InterposePuf::sample(n, 2, 2, 0.0, &mut rng);
            assert_batch_matches_eval(&ipuf, &challenges, &format!("interpose {ctx}"));

            // The bistable ring has no linear representation: it takes
            // the scalar fallback, which must agree as well.
            let br = BistableRingPuf::sample(n, BrPufConfig::calibrated(n), &mut rng);
            assert_batch_matches_eval(&br, &challenges, &format!("bistable-ring {ctx}"));
        }
    }

    #[test]
    fn collect_uniform_batch_matches_scalar_eval() {
        let mut rng = StdRng::seed_from_u64(8);
        let puf = ArbiterPuf::sample(66, 0.0, &mut rng);
        let challenges: Vec<BitVec> = (0..150).map(|_| BitVec::random(66, &mut rng)).collect();
        let set = collect_uniform_batch(&puf, challenges.clone());
        assert_eq!(set.len(), 150);
        for ((c, r), orig) in set.iter().zip(&challenges) {
            assert_eq!(c, orig, "challenge order must be preserved");
            assert_eq!(puf.eval(c), r);
        }
    }

    #[test]
    fn stable_par_is_seed_deterministic_and_filters_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let puf = ArbiterPuf::sample(32, 0.3, &mut rng);
        let a = collect_stable_par(&puf, 150, 9, 1.0, 77);
        let b = collect_stable_par(&puf, 150, 9, 1.0, 77);
        assert_eq!(a, b, "same (puf, seed) must give the same set");
        assert!(!a.is_empty());
        let mut wrong = 0;
        for (c, r) in a.iter() {
            if puf.eval(c) != r {
                wrong += 1;
            }
        }
        assert!(
            (wrong as f64) < a.len() as f64 * 0.02,
            "{wrong}/{} stable CRPs disagree with ideal",
            a.len()
        );
    }

    #[test]
    fn split_partitions_the_set() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = ArbiterPuf::sample(16, 0.0, &mut rng);
        let set = collect_uniform(&puf, 100, &mut rng);
        let (train, test) = set.split(0.7, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        assert_eq!(train.challenge_bits(), 16);
    }

    #[test]
    fn take_prefix() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = ArbiterPuf::sample(8, 0.0, &mut rng);
        let set = collect_uniform(&puf, 50, &mut rng);
        let head = set.take(10);
        assert_eq!(head.len(), 10);
        assert_eq!(head.crps()[0], set.crps()[0]);
    }

    #[test]
    fn ones_fraction_counts_responses() {
        let mut set = CrpSet::new(2);
        set.push(Crp::new(BitVec::zeros(2), true));
        set.push(Crp::new(BitVec::ones(2), false));
        assert_eq!(set.ones_fraction(), 0.5);
        assert_eq!(CrpSet::new(4).ones_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "challenge length mismatch")]
    fn push_wrong_length_panics() {
        let mut set = CrpSet::new(4);
        set.push(Crp::new(BitVec::zeros(5), false));
    }

    #[test]
    fn extend_appends() {
        let mut set = CrpSet::new(3);
        set.extend([
            Crp::new(BitVec::zeros(3), true),
            Crp::new(BitVec::ones(3), false),
        ]);
        assert_eq!(set.len(), 2);
    }
}
