//! XOR Arbiter PUFs with **correlated** chains — the RocknRoll
//! construction of Ganji et al. \[17\] that the paper contrasts with the
//! uncorrelated bound of \[9\].
//!
//! Section V-B: XOR Arbiter PUFs with `k ≫ ln n` chains were modeled in
//! \[17\] at ≈75 % accuracy using the LMN algorithm, *without*
//! contradicting the hardness results — because (1) those chains were
//! made deliberately correlated, and (2) the examples were uniform and
//! the learner improper. [`CorrelatedXorArbiterPuf`] manufactures such
//! a device: all chains share a common base delay vector, plus small
//! independent per-chain deviations controlled by `deviation`.
//!
//! At `deviation = 0` every chain is identical, so the XOR of an odd
//! number of chains *is* the base chain (a single LTF — trivially
//! learnable) and the XOR of an even number is constant. Small
//! deviations interpolate between that degenerate case and fully
//! independent chains, reproducing the "large k yet learnable"
//! phenomenon.

use crate::arbiter::{gaussian, ArbiterPuf};
use crate::xor_arbiter::XorArbiterPuf;
use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// A `k`-chain XOR Arbiter PUF whose chains are correlated through a
/// shared base delay vector.
#[derive(Clone, Debug, PartialEq)]
pub struct CorrelatedXorArbiterPuf {
    inner: XorArbiterPuf,
    deviation: f64,
}

impl CorrelatedXorArbiterPuf {
    /// Manufactures `k` chains of `n` stages: chain `i` has weights
    /// `w_base + deviation · w_i` with `w_base, w_i` i.i.d. standard
    /// normal vectors.
    ///
    /// `deviation = 0` gives perfectly correlated chains; large values
    /// approach the independent chains of
    /// [`XorArbiterPuf`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or `deviation < 0`.
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        deviation: f64,
        noise_sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0 && k > 0, "n and k must be positive");
        assert!(deviation >= 0.0, "deviation must be non-negative");
        let base: Vec<f64> = (0..=n).map(|_| gaussian(rng)).collect();
        let chains = (0..k)
            .map(|_| {
                let weights: Vec<f64> =
                    base.iter().map(|b| b + deviation * gaussian(rng)).collect();
                ArbiterPuf::from_weights(weights, noise_sigma)
            })
            .collect();
        CorrelatedXorArbiterPuf {
            inner: XorArbiterPuf::from_chains(chains),
            deviation,
        }
    }

    /// The per-chain deviation scale.
    pub fn deviation(&self) -> f64 {
        self.deviation
    }

    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.inner.num_chains()
    }

    /// The underlying XOR composition.
    pub fn as_xor(&self) -> &XorArbiterPuf {
        &self.inner
    }

    /// Mean pairwise response correlation of the chains, estimated on
    /// `samples` random challenges (in the ±1 sense: 1 = identical,
    /// 0 = independent).
    pub fn chain_correlation<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> f64 {
        assert!(samples > 0);
        let k = self.num_chains();
        if k < 2 {
            return 1.0;
        }
        let n = self.num_inputs();
        let mut total = 0.0;
        let mut pairs = 0usize;
        let responses: Vec<Vec<f64>> = {
            let cs: Vec<BitVec> = (0..samples).map(|_| BitVec::random(n, rng)).collect();
            self.inner
                .chains()
                .iter()
                .map(|ch| cs.iter().map(|c| ch.eval_pm(c)).collect())
                .collect()
        };
        for i in 0..k {
            for j in (i + 1)..k {
                let dot: f64 = responses[i]
                    .iter()
                    .zip(&responses[j])
                    .map(|(a, b)| a * b)
                    .sum();
                total += dot / samples as f64;
                pairs += 1;
            }
        }
        total / pairs as f64
    }
}

impl BooleanFunction for CorrelatedXorArbiterPuf {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn eval(&self, challenge: &BitVec) -> bool {
        self.inner.eval(challenge)
    }
}

impl PufModel for CorrelatedXorArbiterPuf {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        self.inner.eval_noisy(challenge, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_deviation_odd_k_equals_base_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = CorrelatedXorArbiterPuf::sample(16, 3, 0.0, 0.0, &mut rng);
        let base = &puf.as_xor().chains()[0];
        for _ in 0..200 {
            let c = BitVec::random(16, &mut rng);
            assert_eq!(puf.eval(&c), base.eval(&c));
        }
        assert!((puf.chain_correlation(500, &mut rng) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_deviation_even_k_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = CorrelatedXorArbiterPuf::sample(16, 4, 0.0, 0.0, &mut rng);
        for _ in 0..200 {
            let c = BitVec::random(16, &mut rng);
            assert!(!puf.eval(&c), "XOR of identical chains cancels");
        }
    }

    #[test]
    fn correlation_decreases_with_deviation() {
        let mut rng = StdRng::seed_from_u64(3);
        let tight = CorrelatedXorArbiterPuf::sample(32, 4, 0.1, 0.0, &mut rng);
        let loose = CorrelatedXorArbiterPuf::sample(32, 4, 2.0, 0.0, &mut rng);
        let c_tight = tight.chain_correlation(2000, &mut rng);
        let c_loose = loose.chain_correlation(2000, &mut rng);
        assert!(
            c_tight > c_loose + 0.2,
            "tight {c_tight} vs loose {c_loose}"
        );
        assert!(c_tight > 0.7, "{c_tight}");
        assert!(c_loose < 0.5, "{c_loose}");
    }

    #[test]
    fn small_deviation_keeps_large_k_learnable_by_a_single_ltf() {
        // The RocknRoll phenomenon in miniature: k = 7 chains, nearly
        // correlated, so sign(base-chain delay) still predicts the XOR
        // far above chance.
        let mut rng = StdRng::seed_from_u64(4);
        let puf = CorrelatedXorArbiterPuf::sample(32, 7, 0.15, 0.0, &mut rng);
        let base = puf.as_xor().chains()[0].clone();
        let mut agree = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            let c = BitVec::random(32, &mut rng);
            if puf.eval(&c) == base.eval(&c) {
                agree += 1;
            }
        }
        let acc = agree as f64 / trials as f64;
        assert!(acc > 0.6, "base chain predicts only {acc}");

        // With independent chains (huge deviation) the same predictor
        // collapses to chance.
        let indep = CorrelatedXorArbiterPuf::sample(32, 7, 10.0, 0.0, &mut rng);
        let base = indep.as_xor().chains()[0].clone();
        let mut agree = 0usize;
        for _ in 0..trials {
            let c = BitVec::random(32, &mut rng);
            if indep.eval(&c) == base.eval(&c) {
                agree += 1;
            }
        }
        let acc_indep = agree as f64 / trials as f64;
        assert!(acc_indep < 0.6, "independent chains: {acc_indep}");
    }

    #[test]
    fn noisy_evaluation_supported() {
        let mut rng = StdRng::seed_from_u64(5);
        let puf = CorrelatedXorArbiterPuf::sample(16, 3, 0.2, 0.3, &mut rng);
        let c = BitVec::random(16, &mut rng);
        let _ = puf.eval_noisy(&c, &mut rng);
        assert_eq!(puf.num_chains(), 3);
        assert_eq!(puf.deviation(), 0.2);
    }
}
