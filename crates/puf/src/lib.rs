//! Simulators for the physically unclonable functions (PUFs) analyzed in
//! *"Pitfalls in Machine Learning-based Adversary Modeling for Hardware
//! Systems"* (DATE 2020).
//!
//! The paper's experiments ran on silicon (Arbiter/XOR Arbiter PUF ASICs
//! and BR PUFs on an Intel/Altera Cyclone IV FPGA). This crate provides
//! the standard behavioural models that the paper itself analyzes, so
//! every attack and bound in the workspace can be exercised end-to-end:
//!
//! - [`ArbiterPuf`]: the additive linear delay model
//!   `r = sgn(w·Φ(c) + noise)` — by construction a linear threshold
//!   function over the transformed challenge (Section III-A of the
//!   paper, after Gassend et al. and Rührmair et al.);
//! - [`XorArbiterPuf`]: `k` independent chains XORed together, the
//!   composed primitive of Table I;
//! - [`BistableRingPuf`]: a bistable-ring model with pairwise (and
//!   optional triple) interaction terms, i.e. deliberately **not** an
//!   LTF — the concept whose mis-representation Tables II and III
//!   expose;
//! - noise models ([`noise`]): Gaussian evaluation noise, attribute
//!   noise (challenge bit flips) and response flips;
//! - CRP collection ([`crp`]): uniform sampling, majority-vote filtering
//!   for "noiseless, stable CRPs", train/test splits;
//! - quality metrics ([`metrics`]): reliability, uniqueness, uniformity.
//!
//! # Quickstart
//!
//! ```
//! use mlam_puf::{ArbiterPuf, PufModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let puf = ArbiterPuf::sample(64, 0.0, &mut rng);
//! let crps = mlam_puf::crp::collect_uniform(&puf, 100, &mut rng);
//! assert_eq!(crps.len(), 100);
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod arff;
pub mod bistable_ring;
pub mod bitslice;
pub mod challenge;
pub mod correlated;
pub mod crp;
pub mod feed_forward;
pub mod interpose;
pub mod lockdown;
pub mod metrics;
pub mod noise;
pub mod unreliable;
pub mod xor_arbiter;

pub use arbiter::ArbiterPuf;
pub use bistable_ring::{BistableRingPuf, BrPufConfig};
pub use challenge::{phi_transform, phi_transform_into};
pub use correlated::CorrelatedXorArbiterPuf;
pub use crp::{Crp, CrpSet};
pub use feed_forward::FeedForwardArbiterPuf;
pub use interpose::InterposePuf;
pub use lockdown::LockdownPuf;
pub use unreliable::UnreliablePuf;
pub use xor_arbiter::XorArbiterPuf;

use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// A simulated PUF instance.
///
/// A PUF is a *noisy* Boolean function: [`PufModel::eval_noisy`] draws a
/// fresh evaluation (metastability, thermal noise, …), while the
/// [`BooleanFunction`] impl every model also provides is the **ideal
/// (noise-free) response**, i.e. the ground-truth concept an attacker is
/// trying to learn.
pub trait PufModel: BooleanFunction {
    /// Challenge length in bits.
    fn challenge_bits(&self) -> usize {
        self.num_inputs()
    }

    /// Draws one noisy evaluation of the PUF on `challenge`.
    ///
    /// Models with zero configured noise must return the ideal response.
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool
    where
        Self: Sized;

    /// Evaluates the **ideal** response on every challenge, fanned out
    /// across `MLAM_THREADS` worker threads.
    ///
    /// Each evaluation is a pure function of the challenge, so the
    /// result equals mapping [`BooleanFunction::eval`] sequentially —
    /// bit-identical at any thread count. Linear-delay models override
    /// this with the bit-sliced kernels of [`bitslice`] (same
    /// responses, ~an order of magnitude faster); the default is the
    /// counted scalar fallback used by non-linear simulators.
    fn eval_batch(&self, challenges: &[BitVec]) -> Vec<bool>
    where
        Self: Sized + Sync,
    {
        bitslice::scalar_eval_batch(self, challenges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_models_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
        let c = BitVec::random(32, &mut rng);
        let r = puf.eval(&c);
        for _ in 0..10 {
            assert_eq!(puf.eval_noisy(&c, &mut rng), r);
        }
    }
}
