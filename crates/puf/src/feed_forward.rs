//! Feed-forward Arbiter PUFs: a classic attempt to defeat the linear
//! delay model by making some challenge bits *internal signals*.
//!
//! In a feed-forward loop, an intermediate arbiter taps the delay
//! difference at stage `s` and drives the select bit of a later stage
//! `t` — so the effective challenge depends on the device's own
//! physical state. The composed function is no longer linear in any
//! fixed feature transform, which is why the original modeling attacks
//! needed evolutionary strategies (the paper's CMA-ES lineage) rather
//! than the Perceptron.
//!
//! The simulation uses the standard stage recursion
//! `Δ_i = χ(c_i)·Δ_{i−1} + α_i + χ(c_i)·β_i` with `χ(0)=+1, χ(1)=−1`
//! and per-stage parameters `α, β ~ N(0, 1)`.

use crate::arbiter::gaussian;
use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// A feed-forward loop: the arbiter at the output of stage `tap`
/// drives the select bit of stage `target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeedForwardLoop {
    /// Stage whose accumulated delay difference is tapped (0-based,
    /// tapped *after* this stage).
    pub tap: usize,
    /// Stage whose select bit is overridden (must be `> tap`).
    pub target: usize,
}

/// An `n`-stage Arbiter PUF with feed-forward loops.
///
/// # Example
///
/// ```
/// use mlam_puf::feed_forward::{FeedForwardArbiterPuf, FeedForwardLoop};
/// use mlam_boolean::{BitVec, BooleanFunction};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let loops = vec![FeedForwardLoop { tap: 10, target: 20 }];
/// let puf = FeedForwardArbiterPuf::sample(32, loops, 0.0, &mut rng);
/// let _ = puf.eval(&BitVec::random(32, &mut rng));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FeedForwardArbiterPuf {
    alphas: Vec<f64>,
    betas: Vec<f64>,
    loops: Vec<FeedForwardLoop>,
    noise_sigma: f64,
}

impl FeedForwardArbiterPuf {
    /// Manufactures a random instance.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, a loop has `tap >= target` or
    /// `target >= n`, or `noise_sigma < 0`.
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        loops: Vec<FeedForwardLoop>,
        noise_sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "need at least one stage");
        assert!(noise_sigma >= 0.0);
        for l in &loops {
            assert!(l.tap < l.target, "loop must feed forward: {l:?}");
            assert!(l.target < n, "loop target out of range: {l:?}");
        }
        FeedForwardArbiterPuf {
            alphas: (0..n).map(|_| gaussian(rng)).collect(),
            betas: (0..n).map(|_| gaussian(rng)).collect(),
            loops,
            noise_sigma,
        }
    }

    /// Manufactures an instance with `count` evenly spread loops, each
    /// spanning `span` stages.
    ///
    /// # Panics
    ///
    /// Panics if the loops do not fit (`count·1 + span >= n`).
    pub fn sample_spread<R: Rng + ?Sized>(
        n: usize,
        count: usize,
        span: usize,
        noise_sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(span >= 1 && count >= 1);
        assert!(count * span < n, "loops do not fit into {n} stages");
        let loops = (0..count)
            .map(|i| {
                let tap = i * (n / (count + 1));
                FeedForwardLoop {
                    tap,
                    target: tap + span,
                }
            })
            .collect();
        Self::sample(n, loops, noise_sigma, rng)
    }

    /// The feed-forward loops.
    pub fn loops(&self) -> &[FeedForwardLoop] {
        &self.loops
    }

    /// Per-stage α parameters (for the bit-sliced batch evaluator).
    pub(crate) fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Per-stage β parameters (for the bit-sliced batch evaluator).
    pub(crate) fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The delay difference at the final arbiter (noise-free).
    pub fn delay_difference(&self, challenge: &BitVec) -> f64 {
        let n = self.alphas.len();
        assert_eq!(challenge.len(), n, "challenge length mismatch");
        let mut delta = 0.0f64;
        let mut overrides: Vec<Option<bool>> = vec![None; n];
        // Loop taps sorted by position are evaluated on the fly.
        for i in 0..n {
            let bit = overrides[i].unwrap_or_else(|| challenge.get(i));
            let chi = if bit { -1.0 } else { 1.0 };
            delta = chi * delta + self.alphas[i] + chi * self.betas[i];
            for l in &self.loops {
                if l.tap == i {
                    overrides[l.target] = Some(delta < 0.0);
                }
            }
        }
        delta
    }
}

impl BooleanFunction for FeedForwardArbiterPuf {
    fn num_inputs(&self) -> usize {
        self.alphas.len()
    }

    fn eval(&self, challenge: &BitVec) -> bool {
        self.delay_difference(challenge) < 0.0
    }
}

impl PufModel for FeedForwardArbiterPuf {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let eta = if self.noise_sigma > 0.0 {
            self.noise_sigma * gaussian(rng)
        } else {
            0.0
        };
        self.delay_difference(challenge) + eta < 0.0
    }

    /// Bit-sliced ideal batch evaluation: the stage recursion runs on
    /// 64 lanes at once, loop taps overwrite the target select words
    /// (see [`crate::bitslice`]).
    fn eval_batch(&self, challenges: &[BitVec]) -> Vec<bool> {
        if crate::bitslice::scalar_forced() {
            return crate::bitslice::scalar_eval_batch(self, challenges);
        }
        crate::bitslice::eval_feed_forward_batch(self, challenges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_loops_equals_plain_arbiter_recursion() {
        // Without loops the device is deterministic and roughly balanced.
        let mut rng = StdRng::seed_from_u64(1);
        let puf = FeedForwardArbiterPuf::sample(32, vec![], 0.0, &mut rng);
        let ones = (0..2000)
            .filter(|_| puf.eval(&BitVec::random(32, &mut rng)))
            .count();
        let frac = ones as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.2, "bias {frac}");
    }

    #[test]
    fn overridden_bit_is_ignored() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = FeedForwardArbiterPuf::sample(
            16,
            vec![FeedForwardLoop { tap: 4, target: 10 }],
            0.0,
            &mut rng,
        );
        // Flipping challenge bit 10 never changes the response: the
        // loop drives that stage.
        for _ in 0..300 {
            let c = BitVec::random(16, &mut rng);
            let c2 = c.with_flipped(10);
            assert_eq!(puf.eval(&c), puf.eval(&c2));
        }
    }

    #[test]
    fn loops_break_phi_linearity() {
        use mlam_learn_shim::*;
        // A plain arbiter is phi-linear; a feed-forward one is not.
        // Verified indirectly: responses of the FF device disagree with
        // every phi-linear fit of its own CRPs noticeably more often.
        let mut rng = StdRng::seed_from_u64(3);
        let ff = FeedForwardArbiterPuf::sample_spread(24, 3, 6, 0.0, &mut rng);
        let err_ff = phi_linear_fit_error(&ff, 3000, &mut rng);
        let plain = FeedForwardArbiterPuf::sample(24, vec![], 0.0, &mut rng);
        let err_plain = phi_linear_fit_error(&plain, 3000, &mut rng);
        assert!(err_plain < 0.05, "plain arbiter fit error {err_plain}");
        assert!(
            err_ff > err_plain + 0.03,
            "feed-forward must resist the linear model: {err_ff} vs {err_plain}"
        );
    }

    /// Minimal in-crate phi-linear fitter (the full learners live in
    /// `mlam-learn`, which depends on this crate, so tests here carry a
    /// tiny local copy).
    mod mlam_learn_shim {
        use super::*;
        use crate::challenge::phi_transform;

        pub fn phi_linear_fit_error<F: BooleanFunction, R: Rng + ?Sized>(
            f: &F,
            m: usize,
            rng: &mut R,
        ) -> f64 {
            let n = f.num_inputs();
            let data: Vec<(Vec<f64>, f64)> = (0..m)
                .map(|_| {
                    let c = BitVec::random(n, rng);
                    (phi_transform(&c), f.eval_pm(&c))
                })
                .collect();
            let mut w = vec![0.0f64; n + 1];
            let mut best = w.clone();
            let mut best_err = usize::MAX;
            for _ in 0..40 {
                let mut mistakes = 0;
                for (phi, t) in &data {
                    let s: f64 = phi.iter().zip(&w).map(|(a, b)| a * b).sum();
                    if s * t <= 0.0 {
                        for (wi, p) in w.iter_mut().zip(phi) {
                            *wi += t * p;
                        }
                        mistakes += 1;
                    }
                }
                let err = data
                    .iter()
                    .filter(|(phi, t)| {
                        phi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() * t <= 0.0
                    })
                    .count();
                if err < best_err {
                    best_err = err;
                    best = w.clone();
                }
                if mistakes == 0 {
                    break;
                }
            }
            let _ = best;
            best_err as f64 / data.len() as f64
        }
    }

    #[test]
    fn noise_supported() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = FeedForwardArbiterPuf::sample_spread(16, 2, 4, 0.5, &mut rng);
        let c = BitVec::random(16, &mut rng);
        let _ = puf.eval_noisy(&c, &mut rng);
        assert_eq!(puf.loops().len(), 2);
    }

    #[test]
    #[should_panic(expected = "feed forward")]
    fn backward_loop_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        FeedForwardArbiterPuf::sample(
            8,
            vec![FeedForwardLoop { tap: 5, target: 2 }],
            0.0,
            &mut rng,
        );
    }
}
