//! The lockdown interface of Yu et al. \[10\]: preventing ML attacks by
//! construction — by taking the *access* axis away from the adversary.
//!
//! The paper cites \[10\] as a design consequence of the learnability
//! bounds: if an XOR Arbiter PUF is learnable from enough CRPs, the
//! protocol must ensure the attacker never gets them. The lockdown
//! technique lets the *verifier* choose (half of) each challenge from a
//! pre-recorded database and never reuses an authentication round, so a
//! protocol-compliant interface bounds the total CRP exposure.
//!
//! [`LockdownPuf`] wraps any [`PufModel`] behind exactly that
//! discipline: a query budget fixed at enrollment, after which the
//! device refuses. In adversary-model terms this *caps the sample
//! complexity available to any attack*, turning Table I's bounds from
//! attack costs into security margins.

use crate::PufModel;
use mlam_boolean::BitVec;
use rand::Rng;
use std::cell::Cell;
use std::collections::HashSet;

/// Error returned when the lockdown interface refuses a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockdownError {
    /// The lifetime query budget is exhausted.
    BudgetExhausted,
    /// The challenge was already used in a previous round (replay).
    ChallengeReused,
}

impl std::fmt::Display for LockdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockdownError::BudgetExhausted => write!(f, "query budget exhausted"),
            LockdownError::ChallengeReused => write!(f, "challenge already used"),
        }
    }
}

impl std::error::Error for LockdownError {}

/// A PUF behind a lockdown interface: at most `budget` distinct
/// challenges are ever answered, each only once.
#[derive(Debug)]
pub struct LockdownPuf<P> {
    inner: P,
    budget: usize,
    used: std::cell::RefCell<HashSet<BitVec>>,
    answered: Cell<usize>,
}

impl<P: PufModel> LockdownPuf<P> {
    /// Wraps `inner` with a lifetime budget of `budget` queries.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(inner: P, budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        LockdownPuf {
            inner,
            budget,
            used: std::cell::RefCell::new(HashSet::new()),
            answered: Cell::new(0),
        }
    }

    /// Queries the device. Each distinct challenge is answered at most
    /// once, and at most `budget` challenges are answered in total.
    ///
    /// # Errors
    ///
    /// [`LockdownError::BudgetExhausted`] once the budget is spent;
    /// [`LockdownError::ChallengeReused`] on a repeated challenge.
    pub fn query(&self, challenge: &BitVec) -> Result<bool, LockdownError> {
        if self.answered.get() >= self.budget {
            return Err(LockdownError::BudgetExhausted);
        }
        if !self.used.borrow_mut().insert(challenge.clone()) {
            return Err(LockdownError::ChallengeReused);
        }
        self.answered.set(self.answered.get() + 1);
        Ok(self.inner.eval(challenge))
    }

    /// Queries answered so far.
    pub fn queries_answered(&self) -> usize {
        self.answered.get()
    }

    /// Remaining budget.
    pub fn remaining_budget(&self) -> usize {
        self.budget - self.answered.get()
    }

    /// The wrapped device (the verifier's enrollment-time access; an
    /// attacker does not have this).
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// One round of the mutual-authentication protocol of \[10\], simulated:
/// verifier and device each contribute half of the challenge, the
/// device responds through the lockdown interface, and the verifier
/// checks the response against its enrollment database (here: the
/// model it built at enrollment, i.e. the inner PUF itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthRound {
    /// Whether the device authenticated successfully.
    pub accepted: bool,
    /// Whether the interface refused (budget/replay).
    pub refused: bool,
}

/// Runs one authentication round: both parties contribute random
/// nonces forming the challenge; the verifier accepts iff the response
/// matches its enrollment record.
pub fn authenticate<P: PufModel, R: Rng + ?Sized>(
    device: &LockdownPuf<P>,
    rng: &mut R,
) -> AuthRound {
    let n = device.inner().challenge_bits();
    // Verifier nonce = low half, device nonce = high half.
    let challenge = BitVec::random(n, rng);
    match device.query(&challenge) {
        Ok(response) => AuthRound {
            accepted: response == device.inner().eval(&challenge),
            refused: false,
        },
        Err(_) => AuthRound {
            accepted: false,
            refused: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(budget: usize, seed: u64) -> LockdownPuf<ArbiterPuf> {
        let mut rng = StdRng::seed_from_u64(seed);
        LockdownPuf::new(ArbiterPuf::sample(32, 0.0, &mut rng), budget)
    }

    #[test]
    fn budget_is_enforced() {
        let mut rng = StdRng::seed_from_u64(1);
        let dev = device(5, 1);
        for _ in 0..5 {
            let c = BitVec::random(32, &mut rng);
            assert!(dev.query(&c).is_ok());
        }
        let c = BitVec::random(32, &mut rng);
        assert_eq!(dev.query(&c), Err(LockdownError::BudgetExhausted));
        assert_eq!(dev.queries_answered(), 5);
        assert_eq!(dev.remaining_budget(), 0);
    }

    #[test]
    fn replay_is_refused() {
        let mut rng = StdRng::seed_from_u64(2);
        let dev = device(10, 2);
        let c = BitVec::random(32, &mut rng);
        assert!(dev.query(&c).is_ok());
        assert_eq!(dev.query(&c), Err(LockdownError::ChallengeReused));
        // Replay does not consume budget.
        assert_eq!(dev.queries_answered(), 1);
    }

    #[test]
    fn authentication_succeeds_within_budget_then_refuses() {
        let mut rng = StdRng::seed_from_u64(3);
        let dev = device(3, 3);
        for _ in 0..3 {
            let round = authenticate(&dev, &mut rng);
            assert!(round.accepted && !round.refused);
        }
        let round = authenticate(&dev, &mut rng);
        assert!(round.refused && !round.accepted);
    }

    #[test]
    fn eavesdropper_is_crp_starved() {
        // The security argument in numbers: a 100-CRP lifetime budget
        // keeps any learner's training set at <= 100 examples — far
        // below what the device needs to be modeled well.
        let mut rng = StdRng::seed_from_u64(4);
        let dev = device(100, 4);
        let mut eavesdropped = Vec::new();
        loop {
            let c = BitVec::random(32, &mut rng);
            match dev.query(&c) {
                Ok(r) => eavesdropped.push((c, r)),
                Err(LockdownError::BudgetExhausted) => break,
                Err(LockdownError::ChallengeReused) => continue,
            }
        }
        assert_eq!(eavesdropped.len(), 100);
        // The wrapped device would happily answer more — the interface
        // is the security boundary.
        use mlam_boolean::BooleanFunction;
        let c = BitVec::random(32, &mut rng);
        let _ = dev.inner().eval(&c);
    }
}
