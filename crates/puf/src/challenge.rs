//! Challenge encodings and the arbiter feature transform Φ.
//!
//! The additive delay model of an arbiter chain is linear not in the raw
//! challenge bits but in the *parity features*
//! `Φ_i(c) = Π_{j=i}^{n-1} (1 − 2·c_j)` (with `Φ_n = 1`): the delay
//! difference at the arbiter is `Δ(c) = w·Φ(c)` for an instance-specific
//! weight vector `w ∈ R^{n+1}`. This is the change of variables that
//! makes an Arbiter PUF a linear threshold function (paper, Section
//! III-A, after \[6\], \[8\]).

use mlam_boolean::BitVec;
use rand::Rng;

/// Computes the arbiter parity-feature vector `Φ(c) ∈ {−1,+1}^{n+1}`.
///
/// `Φ_i = Π_{j≥i} (1−2c_j)` for `i = 0..n`, and the constant feature
/// `Φ_n = 1`. Computed right-to-left in `O(n)`.
///
/// # Example
///
/// ```
/// use mlam_boolean::BitVec;
/// use mlam_puf::phi_transform;
///
/// let c = BitVec::from_bools(&[false, true, false]);
/// // suffix parities: bits (0,1,0) -> (1-2c) = (+1,-1,+1)
/// // phi_0 = +1*-1*+1 = -1, phi_1 = -1*+1 = -1, phi_2 = +1, phi_3 = 1
/// assert_eq!(phi_transform(&c), vec![-1.0, -1.0, 1.0, 1.0]);
/// ```
pub fn phi_transform(c: &BitVec) -> Vec<f64> {
    let mut phi = Vec::new();
    phi_transform_into(c, &mut phi);
    phi
}

/// Allocation-free variant of [`phi_transform`]: writes `Φ(c)` into
/// `out`, reusing its capacity. Scalar callers evaluating many
/// challenges should hold one buffer and call this in a loop.
///
/// The suffix parities are resolved word-parallel via
/// [`BitVec::suffix_parity_words`]; the written values are identical to
/// [`phi_transform`].
pub fn phi_transform_into(c: &BitVec, out: &mut Vec<f64>) {
    let n = c.len();
    out.clear();
    out.resize(n + 1, 1.0);
    let words = c.words();
    // Word-parallel suffix-parity scan (same kernel as
    // `BitVec::suffix_parity_words`, run in place to avoid the
    // intermediate word buffer).
    let mut carry = 0u64;
    for g in (0..words.len()).rev() {
        let mut p = words[g];
        p ^= p >> 1;
        p ^= p >> 2;
        p ^= p >> 4;
        p ^= p >> 8;
        p ^= p >> 16;
        p ^= p >> 32;
        let v = p ^ carry;
        for (b, slot) in out[g * 64..n.min((g + 1) * 64)].iter_mut().enumerate() {
            *slot = if (v >> b) & 1 == 1 { -1.0 } else { 1.0 };
        }
        carry = if v & 1 == 1 { u64::MAX } else { 0 };
    }
}

/// Inverse of [`phi_transform`]: recovers the challenge from its feature
/// vector.
///
/// Useful when reasoning about learned weight vectors: a hypothesis
/// linear in Φ-space corresponds to a unique Boolean function of `c`.
///
/// # Panics
///
/// Panics if `phi` is empty, its entries are not ±1, or the constant
/// feature is not `+1`.
pub fn phi_inverse(phi: &[f64]) -> BitVec {
    assert!(!phi.is_empty(), "phi vector must be non-empty");
    let n = phi.len() - 1;
    assert_eq!(phi[n], 1.0, "constant feature must be +1");
    let mut c = BitVec::zeros(n);
    for i in 0..n {
        let ratio = phi[i] / phi[i + 1];
        assert!(
            (ratio - 1.0).abs() < 1e-9 || (ratio + 1.0).abs() < 1e-9,
            "phi entries must be ±1"
        );
        c.set(i, ratio < 0.0);
    }
    c
}

/// Draws `count` uniformly random challenges of `n` bits.
pub fn random_challenges<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<BitVec> {
    (0..count).map(|_| BitVec::random(n, rng)).collect()
}

/// Draws `count` challenges with per-bit bias `p` (probability of a 1).
///
/// Used by the distribution-shift ablation: training an attack on a
/// biased product distribution while the security claim assumed uniform
/// examples is exactly the pitfall of Section III.
pub fn biased_challenges<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    count: usize,
    rng: &mut R,
) -> Vec<BitVec> {
    (0..count)
        .map(|_| BitVec::random_biased(n, p, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phi_of_zero_challenge_is_all_ones() {
        let c = BitVec::zeros(8);
        assert_eq!(phi_transform(&c), vec![1.0; 9]);
    }

    #[test]
    fn phi_last_feature_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let c = BitVec::random(16, &mut rng);
            let phi = phi_transform(&c);
            assert_eq!(phi.len(), 17);
            assert_eq!(phi[16], 1.0);
            assert!(phi.iter().all(|&v| v == 1.0 || v == -1.0));
        }
    }

    #[test]
    fn phi_entries_are_suffix_parities() {
        let c = BitVec::from_bools(&[true, true, false, true]);
        let phi = phi_transform(&c);
        // Suffix ones-counts: [3,2,1,1] -> parities [-1,+1,-1,-1].
        assert_eq!(phi, vec![-1.0, 1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn phi_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = BitVec::random(24, &mut rng);
            assert_eq!(phi_inverse(&phi_transform(&c)), c);
        }
    }

    #[test]
    fn single_bit_flip_changes_prefix_of_phi() {
        // Flipping challenge bit i negates phi_0..phi_i and leaves the
        // rest unchanged — the structural reason a single stage affects
        // all upstream path segments.
        let mut rng = StdRng::seed_from_u64(3);
        let c = BitVec::random(12, &mut rng);
        let phi = phi_transform(&c);
        let c2 = c.with_flipped(5);
        let phi2 = phi_transform(&c2);
        for i in 0..=5 {
            assert_eq!(phi[i], -phi2[i], "prefix entry {i}");
        }
        for i in 6..=12 {
            assert_eq!(phi[i], phi2[i], "suffix entry {i}");
        }
    }

    #[test]
    fn phi_into_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = Vec::new();
        for len in [1usize, 7, 63, 64, 65, 130] {
            for _ in 0..10 {
                let c = BitVec::random(len, &mut rng);
                // Scalar reference: right-to-left suffix product.
                let mut reference = vec![1.0; len + 1];
                let mut acc = 1.0;
                for i in (0..len).rev() {
                    acc *= if c.get(i) { -1.0 } else { 1.0 };
                    reference[i] = acc;
                }
                phi_transform_into(&c, &mut buf);
                assert_eq!(buf, reference, "len {len}");
                assert_eq!(phi_transform(&c), reference, "len {len}");
            }
        }
    }

    #[test]
    fn biased_challenges_have_expected_density() {
        let mut rng = StdRng::seed_from_u64(4);
        let cs = biased_challenges(64, 0.3, 500, &mut rng);
        let total_ones: u32 = cs.iter().map(|c| c.count_ones()).sum();
        let density = total_ones as f64 / (64.0 * 500.0);
        assert!((density - 0.3).abs() < 0.02, "density {density}");
    }
}
