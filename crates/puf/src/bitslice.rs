//! Bit-sliced batch evaluation of the linear-delay PUF family.
//!
//! The additive delay model only consumes a challenge through the signs
//! of its Φ features, and those signs are suffix parities of the
//! challenge bits ([`crate::challenge::phi_transform`]). That makes the
//! evaluation *bit-parallel*: transpose a block of 64 challenges into
//! stage-sliced `u64` words (word `i` holds challenge bit `i` of all 64
//! lanes), run the suffix-parity scan as one XOR per stage for the whole
//! block, and accumulate the 64 delay sums with allocation-free
//! sign-select adds.
//!
//! # Layout and conventions
//!
//! - **Slice words**: `slice[i]` has bit `l` set iff challenge `l` of
//!   the block has bit `i` set. Blocks shorter than 64 challenges leave
//!   the unused high lanes zero.
//! - **Sign words**: after the suffix-XOR scan, bit `l` of word `i` is
//!   set iff `Φ_i(c_l) = −1` (odd suffix parity). The constant feature
//!   `Φ_n = +1` never needs a word.
//! - **Exactness**: `w · (±1.0)` is an exact IEEE-754 sign flip, and the
//!   per-lane accumulation adds the stage terms in index order `0..=n`
//!   starting from `0.0` — the same reduction the scalar
//!   `zip(w, Φ).map(mul).sum()` performs — so every lane's delay sum,
//!   and therefore every response bit, is bit-identical to the scalar
//!   path.
//!
//! # Scalar fallback
//!
//! Non-linear simulators (the bistable ring) have no Φ representation
//! and always take the scalar per-challenge path. Setting the
//! environment variable `MLAM_EVAL_PATH=scalar` forces *every* model
//! onto the scalar path, which is how CI A/B-checks that both paths
//! produce identical responses and counters.
//!
//! Path usage is observable through the telemetry counters
//! `puf.batch.bitsliced_evals`, `puf.batch.bitsliced_blocks` and
//! `puf.batch.scalar_evals`; all three are pure functions of the
//! workload (never of the thread count).

use crate::arbiter::ArbiterPuf;
use crate::feed_forward::FeedForwardArbiterPuf;
use crate::interpose::InterposePuf;
use mlam_boolean::{BitVec, BooleanFunction};
use mlam_telemetry::counter;

/// Number of challenges evaluated per bit-sliced block (one per `u64`
/// lane).
pub const LANES: usize = 64;

/// Challenges handed to each parallel task; a multiple of [`LANES`] so
/// block boundaries are identical at any thread count.
const BATCH_CHUNK: usize = mlam_par::DEFAULT_CHUNK;

/// Whether `MLAM_EVAL_PATH=scalar` is forcing the scalar per-challenge
/// path (checked once per batch call, not per challenge).
pub fn scalar_forced() -> bool {
    std::env::var("MLAM_EVAL_PATH").is_ok_and(|v| v == "scalar")
}

/// The scalar fallback: per-challenge [`BooleanFunction::eval`] fanned
/// out across `MLAM_THREADS` workers, with the `puf.batch.scalar_evals`
/// counter recording the path hit.
pub(crate) fn scalar_eval_batch<F: BooleanFunction + Sync>(
    f: &F,
    challenges: &[BitVec],
) -> Vec<bool> {
    counter!("puf.batch.scalar_evals", challenges.len());
    mlam_par::par_map(challenges, |c| f.eval(c))
}

/// In-place transpose of a 64×64 bit matrix in LSB-first convention:
/// afterwards bit `c` of word `r` equals bit `r` of the original word
/// `c` (Hacker's Delight §7-3, recursive block swap).
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Transposes a block of at most [`LANES`] `n`-bit challenges into
/// stage-sliced words: `out[i]` bit `l` = bit `i` of `challenges[l]`.
/// Unused lanes (blocks shorter than 64) stay zero.
fn transpose_block(challenges: &[BitVec], n: usize, out: &mut Vec<u64>) {
    debug_assert!(challenges.len() <= LANES);
    let groups = n.div_ceil(64);
    out.clear();
    out.resize(groups * 64, 0);
    let mut mat = [0u64; 64];
    for g in 0..groups {
        for (l, slot) in mat.iter_mut().enumerate() {
            *slot = challenges.get(l).map_or(0, |c| c.words()[g]);
        }
        transpose64(&mut mat);
        out[g * 64..(g + 1) * 64].copy_from_slice(&mat);
    }
    out.truncate(n);
}

/// Suffix-XOR scan turning stage-sliced challenge words into Φ sign
/// words: one XOR per stage resolves the suffix parity of all 64 lanes.
fn phi_signs_in_place(slice: &mut [u64]) {
    let mut acc = 0u64;
    for w in slice.iter_mut().rev() {
        acc ^= *w;
        *w = acc;
    }
}

/// Spreads the lane bits of one sign word into per-lane IEEE sign
/// masks: `masks[l]` is `1 << 63` iff lane `l`'s Φ is −1, else `0`.
///
/// The spread makes the accumulation inner loop a pair of contiguous
/// bitwise-xor + add streams the compiler can keep entirely in vector
/// registers — and it is shared by every chain of an XOR arbiter, so
/// the per-lane bit extraction happens once per stage, not once per
/// stage per chain.
#[inline]
fn spread_sign_masks(s: u64, masks: &mut [u64; LANES]) {
    for (l, m) in masks.iter_mut().enumerate() {
        *m = ((s >> l) & 1) << 63;
    }
}

/// Accumulates the 64 delay sums `Δ(c_l) = w·Φ(c_l)` from the sign
/// words. Stage terms are added in index order `0..n` followed by the
/// constant weight, starting from `0.0` — the scalar reduction order —
/// and each `±w_i` is an exact sign-bit flip, so every lane is
/// bit-identical to the scalar dot product.
fn accumulate_delta(weights: &[f64], signs: &[u64], delta: &mut [f64; LANES]) {
    accumulate_delta_multi(&[weights], signs, std::slice::from_mut(delta));
}

/// [`accumulate_delta`] for several chains sharing one sign-word block.
///
/// The per-lane sign masks are spread once into a stage-major table
/// (`n × 64` words, L1-resident) shared by every chain, and the delay
/// sums are accumulated tile-by-tile with the stage loop innermost, so
/// each tile's accumulators stay in registers for the whole scan. Each
/// `(chain, lane)` accumulator still receives its terms in stage order
/// `0..=n` starting from `0.0` — the result is identical to calling
/// [`accumulate_delta`] per chain.
///
/// On x86-64 the kernel is additionally compiled for AVX2 and
/// dispatched at runtime. Both builds execute the same bitwise-xor and
/// IEEE adds in the same order — wider registers change throughput,
/// never results.
fn accumulate_delta_multi(weights: &[&[f64]], signs: &[u64], deltas: &mut [[f64; LANES]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { accumulate_kernel_avx2(weights, signs, deltas) };
    }
    accumulate_kernel::<16>(weights, signs, deltas);
}

/// The AVX2 compilation of [`accumulate_kernel`]: same Rust body, wider
/// autovectorization, and a 32-lane tile (8 × 4-wide accumulators keep
/// the FP-add pipelines saturated).
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_kernel_avx2(weights: &[&[f64]], signs: &[u64], deltas: &mut [[f64; LANES]]) {
    accumulate_kernel::<32>(weights, signs, deltas);
}

/// Portable tile kernel behind [`accumulate_delta_multi`]. `TILE` lanes
/// are accumulated per register tile: small enough that a tile's
/// accumulators live in vector registers across the whole stage scan
/// (delay sums hit memory once per tile, not once per stage), large
/// enough to cover the FP-add latency with independent chains.
#[inline(always)]
fn accumulate_kernel<const TILE: usize>(
    weights: &[&[f64]],
    signs: &[u64],
    deltas: &mut [[f64; LANES]],
) {
    let n = signs.len();
    debug_assert_eq!(weights.len(), deltas.len());
    let mut masks = vec![0u64; n * LANES];
    for (&s, row) in signs.iter().zip(masks.chunks_exact_mut(LANES)) {
        spread_sign_masks(s, row.try_into().expect("row is LANES long"));
    }
    for (w, delta) in weights.iter().zip(deltas.iter_mut()) {
        debug_assert_eq!(w.len(), n + 1);
        let wn = w[n];
        for tile in 0..LANES / TILE {
            let base = tile * TILE;
            let mut acc = [0.0f64; TILE];
            for (i, &wi) in w[..n].iter().enumerate() {
                let bits = wi.to_bits();
                let row = &masks[i * LANES + base..][..TILE];
                for (a, &m) in acc.iter_mut().zip(row) {
                    *a += f64::from_bits(bits ^ m);
                }
            }
            for (d, &a) in delta[base..][..TILE].iter_mut().zip(acc.iter()) {
                *d = a + wn;
            }
        }
    }
}

/// Packs the response bits of the first `lanes` lanes: bit `l` set iff
/// `delta[l] < 0.0`.
fn negative_mask(delta: &[f64; LANES], lanes: usize) -> u64 {
    let mut mask = 0u64;
    for (l, &d) in delta[..lanes].iter().enumerate() {
        if d < 0.0 {
            mask |= 1 << l;
        }
    }
    mask
}

fn check_lengths(challenges: &[BitVec], n: usize) {
    for c in challenges {
        assert_eq!(c.len(), n, "challenge length mismatch");
    }
}

fn push_mask(out: &mut Vec<bool>, mask: u64, lanes: usize) {
    for l in 0..lanes {
        out.push((mask >> l) & 1 == 1);
    }
}

/// Fans blocked evaluation out across `MLAM_THREADS` workers. Chunk and
/// block boundaries depend only on `challenges.len()`, so the result —
/// and the block counter — are bit-identical at any thread count.
fn blocked_eval<K>(challenges: &[BitVec], kernel: K) -> Vec<bool>
where
    K: Fn(&[BitVec], &mut Vec<bool>) + Sync,
{
    counter!("puf.batch.bitsliced_evals", challenges.len());
    let per_chunk = mlam_par::par_chunk_map(challenges, BATCH_CHUNK, |_, chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        for block in chunk.chunks(LANES) {
            counter!("puf.batch.bitsliced_blocks", 1);
            kernel(block, &mut out);
        }
        out
    });
    let mut responses = Vec::with_capacity(challenges.len());
    for part in per_chunk {
        responses.extend(part);
    }
    responses
}

/// Bit-sliced batch evaluation of a single arbiter chain given its
/// Φ-space weight vector (length `n + 1`).
///
/// # Panics
///
/// Panics if any challenge length differs from `weights.len() - 1`.
pub fn eval_arbiter_batch(weights: &[f64], challenges: &[BitVec]) -> Vec<bool> {
    let n = weights.len() - 1;
    check_lengths(challenges, n);
    blocked_eval(challenges, |block, out| {
        let mut signs = Vec::new();
        transpose_block(block, n, &mut signs);
        phi_signs_in_place(&mut signs);
        let mut delta = [0.0f64; LANES];
        accumulate_delta(weights, &signs, &mut delta);
        push_mask(out, negative_mask(&delta, block.len()), block.len());
    })
}

/// Bit-sliced batch evaluation of an XOR arbiter: the Φ sign scan runs
/// once per block and is shared by all chains; the response mask is the
/// XOR of the per-chain masks.
///
/// # Panics
///
/// Panics if `chains` is empty or any challenge length differs from the
/// chains' stage count.
pub fn eval_xor_arbiter_batch(chains: &[ArbiterPuf], challenges: &[BitVec]) -> Vec<bool> {
    assert!(!chains.is_empty(), "need at least one chain");
    let n = chains[0].num_inputs();
    check_lengths(challenges, n);
    let weights: Vec<&[f64]> = chains.iter().map(|c| c.weights()).collect();
    blocked_eval(challenges, |block, out| {
        let mut signs = Vec::new();
        transpose_block(block, n, &mut signs);
        phi_signs_in_place(&mut signs);
        let mut deltas = vec![[0.0f64; LANES]; chains.len()];
        accumulate_delta_multi(&weights, &signs, &mut deltas);
        let mut resp = 0u64;
        for delta in &deltas {
            resp ^= negative_mask(delta, block.len());
        }
        push_mask(out, resp, block.len());
    })
}

/// Bit-sliced batch evaluation of a feed-forward arbiter: the stage
/// recursion runs on 64 lanes at once, and each loop tap overwrites the
/// target stage's select word with the sign mask of the lane deltas —
/// the lane-parallel form of the scalar `overrides` table.
///
/// # Panics
///
/// Panics if any challenge length differs from the stage count.
pub fn eval_feed_forward_batch(puf: &FeedForwardArbiterPuf, challenges: &[BitVec]) -> Vec<bool> {
    let n = puf.num_inputs();
    let alphas = puf.alphas();
    let betas = puf.betas();
    let loops = puf.loops();
    check_lengths(challenges, n);
    blocked_eval(challenges, |block, out| {
        let mut select = Vec::new();
        transpose_block(block, n, &mut select);
        let mut delta = [0.0f64; LANES];
        let mut masks = [0u64; LANES];
        for i in 0..n {
            spread_sign_masks(select[i], &mut masks);
            let (a, b) = (alphas[i], betas[i].to_bits());
            for (d, &chi) in delta.iter_mut().zip(&masks) {
                // Same three operations as the scalar recursion
                // Δ ← χΔ + α + χβ, with χ = ±1 applied as sign flips.
                *d = f64::from_bits(d.to_bits() ^ chi) + a + f64::from_bits(b ^ chi);
            }
            for l in loops {
                if l.tap == i {
                    select[l.target] = negative_mask(&delta, LANES);
                }
            }
        }
        push_mask(out, negative_mask(&delta, block.len()), block.len());
    })
}

/// Bit-sliced batch evaluation of an Interpose PUF: the upper XOR
/// arbiter's response mask becomes the interposed slice word of the
/// lower layer's `n + 1`-stage challenge block.
///
/// # Panics
///
/// Panics if any challenge length differs from the iPUF's.
pub fn eval_interpose_batch(puf: &InterposePuf, challenges: &[BitVec]) -> Vec<bool> {
    let n = puf.num_inputs();
    let pos = puf.position();
    check_lengths(challenges, n);
    let upper_weights: Vec<&[f64]> = puf.upper().chains().iter().map(|c| c.weights()).collect();
    let lower_weights: Vec<&[f64]> = puf.lower().chains().iter().map(|c| c.weights()).collect();
    blocked_eval(challenges, |block, out| {
        let mut raw = Vec::new();
        transpose_block(block, n, &mut raw);
        let mut signs = raw.clone();
        phi_signs_in_place(&mut signs);
        let mut upper_deltas = vec![[0.0f64; LANES]; upper_weights.len()];
        accumulate_delta_multi(&upper_weights, &signs, &mut upper_deltas);
        let mut upper = 0u64;
        for delta in &upper_deltas {
            upper ^= negative_mask(delta, block.len());
        }
        let mut lower = Vec::with_capacity(n + 1);
        lower.extend_from_slice(&raw[..pos]);
        lower.push(upper);
        lower.extend_from_slice(&raw[pos..]);
        phi_signs_in_place(&mut lower);
        let mut lower_deltas = vec![[0.0f64; LANES]; lower_weights.len()];
        accumulate_delta_multi(&lower_weights, &lower, &mut lower_deltas);
        let mut resp = 0u64;
        for delta in &lower_deltas {
            resp ^= negative_mask(delta, block.len());
        }
        push_mask(out, resp, block.len());
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn transpose64_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let original: [u64; 64] = std::array::from_fn(|_| rng.gen());
        let mut t = original;
        transpose64(&mut t);
        for (r, &row) in t.iter().enumerate() {
            for (c, &col) in original.iter().enumerate() {
                assert_eq!((row >> c) & 1, (col >> r) & 1, "element ({r},{c})");
            }
        }
        transpose64(&mut t);
        assert_eq!(t, original, "transpose must be an involution");
    }

    #[test]
    fn transpose_block_slices_stage_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        for (n, lanes) in [(24usize, 64usize), (70, 64), (24, 17), (130, 5)] {
            let block: Vec<BitVec> = (0..lanes).map(|_| BitVec::random(n, &mut rng)).collect();
            let mut slice = Vec::new();
            transpose_block(&block, n, &mut slice);
            assert_eq!(slice.len(), n);
            for (i, &word) in slice.iter().enumerate() {
                for (l, c) in block.iter().enumerate() {
                    assert_eq!((word >> l) & 1 == 1, c.get(i), "stage {i} lane {l}");
                }
                if lanes < 64 {
                    assert_eq!(word >> lanes, 0, "unused lanes must stay zero");
                }
            }
        }
    }

    #[test]
    fn phi_signs_match_suffix_parity_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 70;
        let block: Vec<BitVec> = (0..LANES).map(|_| BitVec::random(n, &mut rng)).collect();
        let mut signs = Vec::new();
        transpose_block(&block, n, &mut signs);
        phi_signs_in_place(&mut signs);
        for (l, c) in block.iter().enumerate() {
            let sp = c.suffix_parity_words();
            for i in 0..n {
                assert_eq!(
                    (signs[i] >> l) & 1,
                    (sp[i / 64] >> (i % 64)) & 1,
                    "lane {l} stage {i}"
                );
            }
        }
    }

    #[test]
    fn accumulate_delta_is_bit_identical_to_scalar_dot() {
        use crate::challenge::phi_transform;
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 24, 64, 65] {
            let weights: Vec<f64> = (0..=n)
                .map(|_| crate::arbiter::gaussian(&mut rng))
                .collect();
            let block: Vec<BitVec> = (0..40).map(|_| BitVec::random(n, &mut rng)).collect();
            let mut signs = Vec::new();
            transpose_block(&block, n, &mut signs);
            phi_signs_in_place(&mut signs);
            let mut delta = [0.0f64; LANES];
            accumulate_delta(&weights, &signs, &mut delta);
            for (l, c) in block.iter().enumerate() {
                let phi = phi_transform(c);
                let scalar: f64 = weights.iter().zip(&phi).map(|(w, p)| w * p).sum();
                assert_eq!(
                    delta[l].to_bits(),
                    scalar.to_bits(),
                    "n {n} lane {l}: {} vs {scalar}",
                    delta[l]
                );
            }
        }
    }

    #[test]
    fn scalar_forced_reads_the_env_knob() {
        // Don't mutate the process environment here (tests run in
        // parallel); just exercise the unset/else branch.
        if std::env::var("MLAM_EVAL_PATH").is_err() {
            assert!(!scalar_forced());
        }
    }
}
