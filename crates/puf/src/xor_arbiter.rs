//! The XOR Arbiter PUF: `k` independent arbiter chains XORed together.

use crate::arbiter::ArbiterPuf;
use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// An `n`-bit, `k`-chain XOR Arbiter PUF (Suh–Devadas \[7\]).
///
/// All `k` chains receive the same challenge; the response is the XOR of
/// the individual responses. In the ±1 encoding this is the *product* of
/// `k` LTF outputs — the class whose learnability Table I of the paper
/// bounds four different ways, and whose noise sensitivity grows as
/// `O(k·√ε)` (Corollary 1).
///
/// The chains here are **uncorrelated** (independent weight draws), the
/// assumption the paper makes explicit when contrasting its Corollary 1
/// with the RocknRoll PUF results of \[17\].
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction};
/// use mlam_puf::{PufModel, XorArbiterPuf};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let puf = XorArbiterPuf::sample(64, 4, 0.0, &mut rng);
/// assert_eq!(puf.num_chains(), 4);
/// let c = BitVec::random(64, &mut rng);
/// let r = puf.eval(&c);
/// // The response equals the XOR of the chain responses:
/// let xor = puf.chains().iter().fold(false, |acc, ch| acc ^ ch.eval(&c));
/// assert_eq!(r, xor);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct XorArbiterPuf {
    chains: Vec<ArbiterPuf>,
}

impl XorArbiterPuf {
    /// Manufactures `k` independent `n`-stage chains, each with
    /// evaluation-noise `noise_sigma` (noise is drawn independently per
    /// chain per evaluation, so the *response* noise rate grows with
    /// `k` — the "inherent noise in XOR Arbiter PUFs" of \[17\]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn sample<R: Rng + ?Sized>(n: usize, k: usize, noise_sigma: f64, rng: &mut R) -> Self {
        assert!(k > 0, "XOR arbiter PUF needs at least one chain");
        let chains = (0..k)
            .map(|_| ArbiterPuf::sample(n, noise_sigma, rng))
            .collect();
        XorArbiterPuf { chains }
    }

    /// Builds an instance from explicit chains.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is empty or the chains have differing stage
    /// counts.
    pub fn from_chains(chains: Vec<ArbiterPuf>) -> Self {
        assert!(!chains.is_empty());
        let n = chains[0].num_inputs();
        assert!(
            chains.iter().all(|c| c.num_inputs() == n),
            "all chains must have the same number of stages"
        );
        XorArbiterPuf { chains }
    }

    /// Number of chains `k`.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// The individual chains.
    pub fn chains(&self) -> &[ArbiterPuf] {
        &self.chains
    }
}

impl BooleanFunction for XorArbiterPuf {
    fn num_inputs(&self) -> usize {
        self.chains[0].num_inputs()
    }

    fn eval(&self, challenge: &BitVec) -> bool {
        self.chains
            .iter()
            .fold(false, |acc, chain| acc ^ chain.eval(challenge))
    }
}

impl PufModel for XorArbiterPuf {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        self.chains
            .iter()
            .fold(false, |acc, chain| acc ^ chain.eval_noisy(challenge, rng))
    }

    /// Bit-sliced ideal batch evaluation: one Φ sign scan per 64-lane
    /// block shared by all chains (see [`crate::bitslice`]).
    fn eval_batch(&self, challenges: &[BitVec]) -> Vec<bool> {
        if crate::bitslice::scalar_forced() {
            return crate::bitslice::scalar_eval_batch(self, challenges);
        }
        crate::bitslice::eval_xor_arbiter_batch(&self.chains, challenges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_chain_equals_arbiter() {
        let mut rng = StdRng::seed_from_u64(1);
        let chain = ArbiterPuf::sample(32, 0.0, &mut rng);
        let xor = XorArbiterPuf::from_chains(vec![chain.clone()]);
        for _ in 0..100 {
            let c = BitVec::random(32, &mut rng);
            assert_eq!(xor.eval(&c), chain.eval(&c));
        }
    }

    #[test]
    fn xor_of_chains_is_product_in_pm() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = XorArbiterPuf::sample(24, 3, 0.0, &mut rng);
        for _ in 0..100 {
            let c = BitVec::random(24, &mut rng);
            let prod: f64 = puf.chains().iter().map(|ch| ch.eval_pm(&c)).product();
            assert_eq!(puf.eval_pm(&c), prod);
        }
    }

    #[test]
    fn response_noise_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let rate = |k: usize, rng: &mut StdRng| {
            let puf = XorArbiterPuf::sample(64, k, 0.3, rng);
            let trials = 3000;
            let flips = (0..trials)
                .filter(|_| {
                    let c = BitVec::random(64, rng);
                    puf.eval_noisy(&c, rng) != puf.eval(&c)
                })
                .count();
            flips as f64 / trials as f64
        };
        let r1 = rate(1, &mut rng);
        let r5 = rate(5, &mut rng);
        assert!(r5 > r1, "k=5 noise {r5} should exceed k=1 noise {r1}");
    }

    #[test]
    fn balanced_responses() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = XorArbiterPuf::sample(64, 4, 0.0, &mut rng);
        let ones = (0..4000)
            .filter(|_| puf.eval(&BitVec::random(64, &mut rng)))
            .count();
        let frac = ones as f64 / 4000.0;
        // XORing reduces bias: the composed PUF is closer to balanced
        // than a single chain.
        assert!((frac - 0.5).abs() < 0.1, "bias {frac}");
    }

    #[test]
    #[should_panic(expected = "same number of stages")]
    fn mismatched_chain_sizes_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = ArbiterPuf::sample(16, 0.0, &mut rng);
        let b = ArbiterPuf::sample(32, 0.0, &mut rng);
        XorArbiterPuf::from_chains(vec![a, b]);
    }

    #[test]
    fn noiseless_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(6);
        let puf = XorArbiterPuf::sample(16, 2, 0.0, &mut rng);
        let c = BitVec::random(16, &mut rng);
        let r = puf.eval(&c);
        for _ in 0..10 {
            assert_eq!(puf.eval_noisy(&c, &mut rng), r);
        }
    }
}
