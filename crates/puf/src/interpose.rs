//! The Interpose PUF (iPUF) — a contemporary composition the adversary-
//! model lens applies to directly.
//!
//! An `(x, y)`-iPUF feeds the challenge to an upper `x`-XOR Arbiter
//! PUF, *interposes* the upper response as an extra challenge bit in
//! the middle of a lower `y`-XOR Arbiter PUF (which therefore has
//! `n + 1` stages), and outputs the lower response. The design's
//! security argument is representational: the composed function is not
//! a plain XOR of LTFs, so the standard attacks' hypothesis classes
//! miss it — exactly the Section V situation, one construction later.
//!
//! The model here supports the half-challenge analysis used by the
//! divide-and-conquer attacks: [`InterposePuf::lower_with_bit`] exposes
//! the lower layer with the interposed bit forced, the handle those
//! attacks grip.

use crate::xor_arbiter::XorArbiterPuf;
use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// An `(x, y)`-Interpose PUF over `n`-bit challenges.
#[derive(Clone, Debug, PartialEq)]
pub struct InterposePuf {
    upper: XorArbiterPuf,
    lower: XorArbiterPuf,
    /// Position at which the upper response is interposed.
    position: usize,
}

impl InterposePuf {
    /// Manufactures an `(x, y)`-iPUF: upper `x`-XOR over `n` stages,
    /// lower `y`-XOR over `n + 1` stages, interposition at the middle.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `x == 0` or `y == 0`.
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        x: usize,
        y: usize,
        noise_sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0 && x > 0 && y > 0);
        InterposePuf {
            upper: XorArbiterPuf::sample(n, x, noise_sigma, rng),
            lower: XorArbiterPuf::sample(n + 1, y, noise_sigma, rng),
            position: n.div_ceil(2),
        }
    }

    /// The upper XOR Arbiter PUF.
    pub fn upper(&self) -> &XorArbiterPuf {
        &self.upper
    }

    /// The lower XOR Arbiter PUF (over `n + 1` challenge bits).
    pub fn lower(&self) -> &XorArbiterPuf {
        &self.lower
    }

    /// The interposition position.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Builds the lower-layer challenge with `bit` interposed.
    pub fn interpose(&self, challenge: &BitVec, bit: bool) -> BitVec {
        let n = self.upper.num_inputs();
        assert_eq!(challenge.len(), n, "challenge length mismatch");
        let mut ext = BitVec::zeros(n + 1);
        for i in 0..self.position {
            ext.set(i, challenge.get(i));
        }
        ext.set(self.position, bit);
        for i in self.position..n {
            ext.set(i + 1, challenge.get(i));
        }
        ext
    }

    /// The lower layer's response with the interposed bit forced to
    /// `bit` — the object the divide-and-conquer attacks model
    /// separately for `bit = 0` and `bit = 1`.
    pub fn lower_with_bit(&self, challenge: &BitVec, bit: bool) -> bool {
        self.lower.eval(&self.interpose(challenge, bit))
    }
}

impl BooleanFunction for InterposePuf {
    fn num_inputs(&self) -> usize {
        self.upper.num_inputs()
    }

    fn eval(&self, challenge: &BitVec) -> bool {
        let r_up = self.upper.eval(challenge);
        self.lower.eval(&self.interpose(challenge, r_up))
    }
}

impl PufModel for InterposePuf {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let r_up = self.upper.eval_noisy(challenge, rng);
        self.lower.eval_noisy(&self.interpose(challenge, r_up), rng)
    }

    /// Bit-sliced ideal batch evaluation: the upper response mask is
    /// interposed as a whole slice word into the lower layer's block
    /// (see [`crate::bitslice`]).
    fn eval_batch(&self, challenges: &[BitVec]) -> Vec<bool> {
        if crate::bitslice::scalar_forced() {
            return crate::bitslice::scalar_eval_batch(self, challenges);
        }
        crate::bitslice::eval_interpose_batch(self, challenges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn response_composes_upper_into_lower() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = InterposePuf::sample(16, 1, 1, 0.0, &mut rng);
        for _ in 0..200 {
            let c = BitVec::random(16, &mut rng);
            let r_up = puf.upper().eval(&c);
            assert_eq!(puf.eval(&c), puf.lower_with_bit(&c, r_up));
        }
    }

    #[test]
    fn interpose_inserts_exactly_one_bit() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = InterposePuf::sample(9, 1, 1, 0.0, &mut rng);
        let c = BitVec::random(9, &mut rng);
        let e0 = puf.interpose(&c, false);
        let e1 = puf.interpose(&c, true);
        assert_eq!(e0.len(), 10);
        assert_eq!(e0.hamming(&e1), 1);
        assert!(e1.get(puf.position()));
        assert!(!e0.get(puf.position()));
        // All other bits preserved in order.
        let p = puf.position();
        for i in 0..9 {
            let j = if i < p { i } else { i + 1 };
            assert_eq!(e0.get(j), c.get(i), "bit {i}");
        }
    }

    #[test]
    fn responses_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = InterposePuf::sample(32, 2, 2, 0.0, &mut rng);
        let ones = (0..3000)
            .filter(|_| puf.eval(&BitVec::random(32, &mut rng)))
            .count();
        let frac = ones as f64 / 3000.0;
        assert!((frac - 0.5).abs() < 0.12, "bias {frac}");
    }

    #[test]
    fn interposed_bit_matters() {
        // The lower layer must actually depend on the interposed bit on
        // a nontrivial fraction of challenges, else the composition is
        // vacuous.
        let mut rng = StdRng::seed_from_u64(4);
        let puf = InterposePuf::sample(24, 1, 1, 0.0, &mut rng);
        let mut differs = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let c = BitVec::random(24, &mut rng);
            if puf.lower_with_bit(&c, false) != puf.lower_with_bit(&c, true) {
                differs += 1;
            }
        }
        let frac = differs as f64 / trials as f64;
        assert!(frac > 0.05, "interposed bit flips only {frac}");
    }

    #[test]
    fn single_ltf_model_fails_against_ipuf() {
        // The representational point: a (1,1)-iPUF already defeats the
        // single-chain Φ model that cracks a plain arbiter PUF.
        use crate::challenge::phi_transform;
        let mut rng = StdRng::seed_from_u64(5);
        let puf = InterposePuf::sample(24, 1, 1, 0.0, &mut rng);
        // Pocket perceptron over Φ features of the *n-bit* challenge.
        let data: Vec<(Vec<f64>, f64)> = (0..4000)
            .map(|_| {
                let c = BitVec::random(24, &mut rng);
                (phi_transform(&c), puf.eval_pm(&c))
            })
            .collect();
        let mut w = vec![0.0f64; 25];
        let mut best_err = usize::MAX;
        for _ in 0..40 {
            let mut mistakes = 0;
            for (phi, t) in &data {
                let s: f64 = phi.iter().zip(&w).map(|(a, b)| a * b).sum();
                if s * t <= 0.0 {
                    for (wi, p) in w.iter_mut().zip(phi) {
                        *wi += t * p;
                    }
                    mistakes += 1;
                }
            }
            let err = data
                .iter()
                .filter(|(phi, t)| phi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() * t <= 0.0)
                .count();
            best_err = best_err.min(err);
            if mistakes == 0 {
                break;
            }
        }
        let acc = 1.0 - best_err as f64 / data.len() as f64;
        assert!(
            acc < 0.95,
            "single-LTF model must not crack the iPUF: {acc}"
        );
        assert!(acc > 0.5, "but it is also not at chance: {acc}");
    }

    #[test]
    fn noisy_eval_supported() {
        let mut rng = StdRng::seed_from_u64(6);
        let puf = InterposePuf::sample(16, 2, 2, 0.2, &mut rng);
        let c = BitVec::random(16, &mut rng);
        let _ = puf.eval_noisy(&c, &mut rng);
    }
}
