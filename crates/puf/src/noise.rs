//! Noise wrappers: attribute noise and response noise.
//!
//! The paper (footnote 1) is careful about what "noise" means: the LMN
//! bounds concern **attribute noise** — hidden factors perturbing the
//! relation between the challenge an attacker *records* and what the
//! device *sees* — as studied in ML, distinct from plain response flips.
//! These wrappers let any experiment inject either kind around any
//! [`PufModel`] without touching the model itself.

use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// Wraps a PUF so that each **noisy** evaluation first flips every
/// challenge bit independently with probability `flip_rate` — attribute
/// noise at rate ε, the quantity `NS_ε` measures.
///
/// The ideal ([`BooleanFunction::eval`]) response is unaffected: the
/// underlying concept stays the same, only observations are corrupted.
///
/// # Example
///
/// ```
/// use mlam_puf::{noise::AttributeNoise, ArbiterPuf, PufModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
/// let noisy = AttributeNoise::new(puf, 0.05);
/// let c = mlam_boolean::BitVec::random(32, &mut rng);
/// let _ = noisy.eval_noisy(&c, &mut rng);
/// ```
#[derive(Clone, Debug)]
pub struct AttributeNoise<P> {
    inner: P,
    flip_rate: f64,
}

impl<P: PufModel> AttributeNoise<P> {
    /// Wraps `inner` with challenge-bit flip probability `flip_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `flip_rate ∉ [0, 1]`.
    pub fn new(inner: P, flip_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_rate),
            "flip rate must be in [0,1]"
        );
        AttributeNoise { inner, flip_rate }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the model.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// The configured flip rate ε.
    pub fn flip_rate(&self) -> f64 {
        self.flip_rate
    }
}

impl<P: PufModel> BooleanFunction for AttributeNoise<P> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }
    fn eval(&self, x: &BitVec) -> bool {
        self.inner.eval(x)
    }
}

impl<P: PufModel> PufModel for AttributeNoise<P> {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let mut perturbed = challenge.clone();
        for i in 0..perturbed.len() {
            if rng.gen_bool(self.flip_rate) {
                perturbed.flip(i);
            }
        }
        self.inner.eval_noisy(&perturbed, rng)
    }
}

/// Wraps a PUF so that each noisy evaluation's **response** is flipped
/// with probability `flip_rate` (classification noise).
#[derive(Clone, Debug)]
pub struct ResponseNoise<P> {
    inner: P,
    flip_rate: f64,
}

impl<P: PufModel> ResponseNoise<P> {
    /// Wraps `inner` with response flip probability `flip_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `flip_rate ∉ [0, 1]`.
    pub fn new(inner: P, flip_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_rate),
            "flip rate must be in [0,1]"
        );
        ResponseNoise { inner, flip_rate }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The configured flip rate.
    pub fn flip_rate(&self) -> f64 {
        self.flip_rate
    }
}

impl<P: PufModel> BooleanFunction for ResponseNoise<P> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }
    fn eval(&self, x: &BitVec) -> bool {
        self.inner.eval(x)
    }
}

impl<P: PufModel> PufModel for ResponseNoise<P> {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let r = self.inner.eval_noisy(challenge, rng);
        if rng.gen_bool(self.flip_rate) {
            !r
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attribute_noise_rate_matches_noise_sensitivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::sample(64, 0.0, &mut rng);
        let eps = 0.02;
        let noisy = AttributeNoise::new(puf, eps);
        let trials = 5000;
        let flips = (0..trials)
            .filter(|_| {
                let c = BitVec::random(64, &mut rng);
                noisy.eval_noisy(&c, &mut rng) != noisy.eval(&c)
            })
            .count();
        let rate = flips as f64 / trials as f64;
        // The observed flip rate is the noise sensitivity of the arbiter
        // in *challenge* space. One challenge-bit flip negates a whole
        // prefix of the Φ features, so the rate is markedly larger than
        // the Φ-space LTF bound O(sqrt(eps)), but still well below 1/2.
        assert!(rate > 0.05 && rate < 0.45, "rate {rate}");
    }

    #[test]
    fn zero_attribute_noise_is_transparent() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::sample(16, 0.0, &mut rng);
        let wrapped = AttributeNoise::new(puf.clone(), 0.0);
        for _ in 0..50 {
            let c = BitVec::random(16, &mut rng);
            assert_eq!(wrapped.eval_noisy(&c, &mut rng), puf.eval(&c));
        }
    }

    #[test]
    fn response_noise_flips_at_the_configured_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
        let noisy = ResponseNoise::new(puf, 0.25);
        let trials = 8000;
        let flips = (0..trials)
            .filter(|_| {
                let c = BitVec::random(32, &mut rng);
                noisy.eval_noisy(&c, &mut rng) != noisy.eval(&c)
            })
            .count();
        let rate = flips as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn ideal_response_is_untouched_by_wrappers() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = ArbiterPuf::sample(16, 0.0, &mut rng);
        let c = BitVec::random(16, &mut rng);
        let expected = puf.eval(&c);
        let a = AttributeNoise::new(puf.clone(), 0.3);
        let r = ResponseNoise::new(puf.clone(), 0.3);
        assert_eq!(a.eval(&c), expected);
        assert_eq!(r.eval(&c), expected);
        assert_eq!(a.inner().eval(&c), expected);
        assert_eq!(a.flip_rate(), 0.3);
        assert_eq!(r.flip_rate(), 0.3);
    }
}
