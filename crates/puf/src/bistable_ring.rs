//! A behavioural model of the Bistable Ring (BR) PUF.
//!
//! No exact mathematical model of BR PUFs is known (paper, Section
//! II-B); what *is* known empirically (Xu et al. \[11\], reproduced by the
//! paper's Tables II and III) is that BR PUFs are approximated — but not
//! captured — by linear threshold functions: LTF models plateau around
//! 90–95 % accuracy, and the halfspace tester certifies the devices to
//! be far from every halfspace.
//!
//! [`BistableRingPuf`] reproduces this phenomenology from first
//! principles. Each of the `n` stages holds two candidate elements
//! (inverters) with manufacture-random strengths; the challenge bit
//! selects one. The settled state of the ring is decided by the sign of
//! a potential with three contributions:
//!
//! - the **sum of selected strengths** (affine in the ±1 challenge ⇒ an
//!   LTF part — the reason LTFs approximate BR PUFs at all),
//! - **pairwise couplings** between neighbouring selected elements
//!   (degree-2 in the challenge ⇒ beyond any LTF),
//! - optional **triple couplings** (degree-3).
//!
//! The relative strength of the interaction terms is the model's
//! nonlinearity dial: with `pair_strength = 0` the device *is* an LTF;
//! as it grows, the best halfspace approximator degrades exactly like
//! the accuracy plateau of Table II, and the spectral level-≤1 weight
//! collapses as Table III requires.

use crate::arbiter::gaussian;
use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// Configuration of the BR PUF interaction model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrPufConfig {
    /// Relative strength of pairwise (degree-2) couplings.
    pub pair_strength: f64,
    /// Relative strength of triple (degree-3) couplings.
    pub triple_strength: f64,
    /// Standard deviation of fresh evaluation noise.
    pub noise_sigma: f64,
}

impl BrPufConfig {
    /// A purely linear (LTF) device: no interactions, no noise.
    pub fn linear() -> Self {
        BrPufConfig {
            pair_strength: 0.0,
            triple_strength: 0.0,
            noise_sigma: 0.0,
        }
    }

    /// Presets calibrated against the **halfspace tester** so the
    /// measured distance from every halfspace follows Table III
    /// (≈20 % at n=16, ≈40 % at n=32, →50 % at n=64).
    ///
    /// With pure-character interactions, the linear challenge variance
    /// is `≈ n/2` and each pairwise coupling contributes `λ²` per
    /// stage, so the degree-≥2 variance fraction — and through the
    /// Gaussian sign picture `dist ≈ arccos(ρ)/π` with
    /// `ρ² = V_lin/(V_lin+V_int)` — is set directly by `λ`.
    pub fn calibrated(n: usize) -> Self {
        // The 16-bit point is measured from only 100 CRPs (70/30
        // fit/hold-out), where the estimator adds a generalization gap
        // of roughly d/m ≈ 0.15 on top of the true distance; the preset
        // therefore targets a smaller true distance so the *measured*
        // value lands at the paper's ≈20 %.
        let (pair_strength, triple_strength) = match n {
            0..=16 => (0.25, 0.0),
            17..=32 => (2.0, 0.6),
            _ => (5.0, 2.5),
        };
        BrPufConfig {
            pair_strength,
            triple_strength,
            noise_sigma: 0.0,
        }
    }

    /// Presets calibrated against the **Table II accuracy plateau**:
    /// the best LTF surrogate reaches ≈80 % on the 16-bit device and
    /// ≈92–94 % on the 32/64-bit devices and stops improving with more
    /// CRPs.
    ///
    /// The paper's Tables II and III pull in opposite directions (the
    /// 16-bit FPGA device is both the *least* LTF-learnable in Table II
    /// and the *closest* to a halfspace in Table III), so no single
    /// parameter point reproduces both; this preset matches Table II,
    /// [`BrPufConfig::calibrated`] matches Table III. See
    /// `EXPERIMENTS.md` for the discussion.
    pub fn calibrated_accuracy(n: usize) -> Self {
        let pair_strength = match n {
            0..=16 => 0.45,
            17..=32 => 0.17,
            _ => 0.15,
        };
        BrPufConfig {
            pair_strength,
            triple_strength: 0.0,
            noise_sigma: 0.0,
        }
    }
}

impl Default for BrPufConfig {
    fn default() -> Self {
        BrPufConfig::calibrated(64)
    }
}

/// An `n`-stage Bistable Ring PUF under the interaction model described
/// in the [module documentation](self).
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction};
/// use mlam_puf::{BistableRingPuf, BrPufConfig, PufModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let puf = BistableRingPuf::sample(32, BrPufConfig::calibrated(32), &mut rng);
/// let c = BitVec::random(32, &mut rng);
/// let _r = puf.eval(&c);
/// assert_eq!(puf.challenge_bits(), 32);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BistableRingPuf {
    /// Per-stage element strengths: `strengths[i][b]` is the strength of
    /// the element stage `i` uses when challenge bit `i` equals `b`.
    strengths: Vec<[f64; 2]>,
    /// Pairwise coupling coefficients between ring neighbours
    /// (`couplings[i]` couples stage `i` with stage `(i+1) mod n`).
    couplings: Vec<f64>,
    /// Triple coupling coefficients (`triples[i]` couples stages
    /// `i, i+1, i+2 mod n`).
    triples: Vec<f64>,
    /// Manufacture-time centering offset `E_c[V]`, subtracted from the
    /// potential so instances are roughly response-balanced. (Physical
    /// BR PUFs are often heavily biased; the paper's experiments use
    /// devices balanced enough that 50 % is the chance baseline, which
    /// this centering reproduces.)
    offset: f64,
    config: BrPufConfig,
}

impl BistableRingPuf {
    /// Manufactures a random instance with `n` stages.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (a bistable ring needs at least three stages)
    /// or a config field is negative.
    pub fn sample<R: Rng + ?Sized>(n: usize, config: BrPufConfig, rng: &mut R) -> Self {
        assert!(n >= 3, "bistable ring needs at least 3 stages, got {n}");
        assert!(
            config.pair_strength >= 0.0
                && config.triple_strength >= 0.0
                && config.noise_sigma >= 0.0,
            "config fields must be non-negative"
        );
        let strengths: Vec<[f64; 2]> = (0..n).map(|_| [gaussian(rng), gaussian(rng)]).collect();
        let couplings: Vec<f64> = (0..n)
            .map(|_| config.pair_strength * gaussian(rng))
            .collect();
        let triples: Vec<f64> = (0..n)
            .map(|_| config.triple_strength * gaussian(rng))
            .collect();
        // Analytic mean of the potential over uniform challenges: the
        // interaction terms couple *mismatches* (mean-zero characters),
        // so only the linear part needs centering: E[s_i] = (t_i0+t_i1)/2.
        let offset: f64 = strengths.iter().map(|t| (t[0] + t[1]) / 2.0).sum();
        BistableRingPuf {
            strengths,
            couplings,
            triples,
            offset,
            config,
        }
    }

    /// The configuration this instance was manufactured with.
    pub fn config(&self) -> BrPufConfig {
        self.config
    }

    /// The settling potential whose sign decides the response.
    ///
    /// `V(c) = Σᵢ s_i(c_i) − E[Σ s_i]  +  Σᵢ βᵢ·xᵢ·xᵢ₊₁  +  Σᵢ γᵢ·xᵢ·xᵢ₊₁·xᵢ₊₂`
    /// with `x_i = ±1` the encoded challenge bit. The couplings act on
    /// the *mismatch* of neighbouring stages (which equals the ±1
    /// character `x_i·x_j` up to the per-stage mismatch magnitudes
    /// folded into β, γ at manufacture), so they carry pure degree-2/3
    /// Fourier weight — the ingredient that takes the device outside
    /// the LTF class.
    pub fn potential(&self, challenge: &BitVec) -> f64 {
        let n = self.strengths.len();
        assert_eq!(challenge.len(), n, "challenge length mismatch");
        let x = |i: usize| -> f64 { challenge.pm(i) };
        // Linear part: selected element strengths, centered.
        let mut v: f64 = -self.offset;
        for i in 0..n {
            v += self.strengths[i][usize::from(challenge.get(i))];
        }
        for i in 0..n {
            v += self.couplings[i] * x(i) * x((i + 1) % n);
        }
        if self.config.triple_strength > 0.0 {
            for i in 0..n {
                v += self.triples[i] * x(i) * x((i + 1) % n) * x((i + 2) % n);
            }
        }
        v
    }
}

impl BooleanFunction for BistableRingPuf {
    fn num_inputs(&self) -> usize {
        self.strengths.len()
    }

    /// Ideal response: logic 1 iff the ring settles into the negative
    /// state.
    fn eval(&self, challenge: &BitVec) -> bool {
        self.potential(challenge) < 0.0
    }
}

impl PufModel for BistableRingPuf {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let v = self.potential(challenge);
        let eta = if self.config.noise_sigma > 0.0 {
            self.config.noise_sigma * gaussian(rng)
        } else {
            0.0
        };
        v + eta < 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::ltf::ChowParameters;
    use mlam_boolean::testing::pocket_perceptron;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_crps(puf: &BistableRingPuf, m: usize, rng: &mut StdRng) -> Vec<(BitVec, bool)> {
        (0..m)
            .map(|_| {
                let c = BitVec::random(puf.num_inputs(), rng);
                let r = puf.eval(&c);
                (c, r)
            })
            .collect()
    }

    #[test]
    fn linear_config_is_learnable_by_an_ltf() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = BistableRingPuf::sample(16, BrPufConfig::linear(), &mut rng);
        let train = sample_crps(&puf, 2000, &mut rng);
        let fit = pocket_perceptron(16, &train, None, 50);
        let test = sample_crps(&puf, 2000, &mut rng);
        let agree =
            test.iter().filter(|(c, r)| fit.eval(c) == *r).count() as f64 / test.len() as f64;
        assert!(agree > 0.95, "linear BR PUF should be ≈LTF, got {agree}");
    }

    #[test]
    fn calibrated_config_resists_ltf_approximation() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = BistableRingPuf::sample(64, BrPufConfig::calibrated(64), &mut rng);
        let train = sample_crps(&puf, 4000, &mut rng);
        let chow = ChowParameters::from_data(64, &train);
        let fit = pocket_perceptron(64, &train, Some(chow.to_ltf()), 20);
        let test = sample_crps(&puf, 4000, &mut rng);
        let agree =
            test.iter().filter(|(c, r)| fit.eval(c) == *r).count() as f64 / test.len() as f64;
        assert!(
            agree < 0.95,
            "calibrated 64-bit BR PUF must not be LTF-learnable to >95 %, got {agree}"
        );
    }

    #[test]
    fn responses_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = BistableRingPuf::sample(32, BrPufConfig::calibrated(32), &mut rng);
        let crps = sample_crps(&puf, 500, &mut rng);
        let ones = crps.iter().filter(|(_, r)| *r).count();
        assert!(
            ones > 50 && ones < 450,
            "degenerate response bias: {ones}/500"
        );
    }

    #[test]
    fn noiseless_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = BistableRingPuf::sample(16, BrPufConfig::calibrated(16), &mut rng);
        let c = BitVec::random(16, &mut rng);
        let r = puf.eval(&c);
        for _ in 0..10 {
            assert_eq!(puf.eval_noisy(&c, &mut rng), r);
        }
    }

    #[test]
    fn noise_sigma_induces_instability() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = BrPufConfig {
            noise_sigma: 2.0,
            ..BrPufConfig::calibrated(32)
        };
        let puf = BistableRingPuf::sample(32, cfg, &mut rng);
        let mut flips = 0;
        for _ in 0..500 {
            let c = BitVec::random(32, &mut rng);
            if puf.eval_noisy(&c, &mut rng) != puf.eval(&c) {
                flips += 1;
            }
        }
        assert!(flips > 10, "expected unstable CRPs, got {flips}");
    }

    #[test]
    #[should_panic(expected = "at least 3 stages")]
    fn tiny_ring_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        BistableRingPuf::sample(2, BrPufConfig::linear(), &mut rng);
    }

    #[test]
    fn calibrated_strengths_increase_with_n() {
        assert!(
            BrPufConfig::calibrated(16).pair_strength < BrPufConfig::calibrated(64).pair_strength
        );
    }
}
