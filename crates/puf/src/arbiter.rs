//! The Arbiter PUF under the additive linear delay model.

use crate::challenge::phi_transform;
use crate::PufModel;
use mlam_boolean::{BitVec, BooleanFunction, LinearThreshold};
use rand::Rng;

/// An `n`-stage Arbiter PUF simulated with the additive delay model.
///
/// Each stage contributes a challenge-dependent delay difference; the
/// total difference at the arbiter is `Δ(c) = w·Φ(c)` with
/// `w ∈ R^{n+1}` drawn i.i.d. from a normal distribution at manufacture
/// and `Φ` the parity-feature transform of
/// [`phi_transform`]. The response is
/// `1` when `Δ(c) + η < 0`, where `η ~ N(0, noise_sigma²)` is fresh
/// evaluation noise modeling metastability and environmental variation.
///
/// The paper (Section III-A) relies on exactly this representation:
/// an Arbiter PUF *is* a linear threshold function over Φ-space.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction};
/// use mlam_puf::{ArbiterPuf, PufModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let puf = ArbiterPuf::sample(64, 0.05, &mut rng);
/// let c = BitVec::random(64, &mut rng);
/// let ideal = puf.eval(&c);            // noise-free ground truth
/// let _noisy = puf.eval_noisy(&c, &mut rng); // one physical evaluation
/// assert_eq!(puf.challenge_bits(), 64);
/// # let _ = ideal;
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ArbiterPuf {
    /// Delay weight vector in Φ-space, length `n + 1`.
    weights: Vec<f64>,
    /// Standard deviation of the fresh additive evaluation noise.
    noise_sigma: f64,
}

impl ArbiterPuf {
    /// Manufactures a random instance: `n` stages, weights
    /// `w_i ~ N(0, 1)`, evaluation-noise standard deviation
    /// `noise_sigma` (relative to unit weight variance).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `noise_sigma < 0`.
    pub fn sample<R: Rng + ?Sized>(n: usize, noise_sigma: f64, rng: &mut R) -> Self {
        assert!(n > 0, "arbiter PUF needs at least one stage");
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        let weights = (0..=n).map(|_| gaussian(rng)).collect();
        ArbiterPuf {
            weights,
            noise_sigma,
        }
    }

    /// Builds an instance from an explicit weight vector (length `n+1`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() < 2` or `noise_sigma < 0`.
    pub fn from_weights(weights: Vec<f64>, noise_sigma: f64) -> Self {
        assert!(weights.len() >= 2, "weights must have length n+1 >= 2");
        assert!(noise_sigma >= 0.0);
        ArbiterPuf {
            weights,
            noise_sigma,
        }
    }

    /// The delay weight vector (length `n + 1`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The evaluation-noise standard deviation.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// The noise-free delay difference `Δ(c) = w·Φ(c)`.
    pub fn delay_difference(&self, challenge: &BitVec) -> f64 {
        assert_eq!(
            challenge.len() + 1,
            self.weights.len(),
            "challenge length mismatch"
        );
        let phi = phi_transform(challenge);
        self.weights.iter().zip(&phi).map(|(w, p)| w * p).sum()
    }

    /// The equivalent [`LinearThreshold`] over Φ-space
    /// (weights = delay weights, threshold = 0).
    ///
    /// Note the LTF acts on `Φ(c)`, not on `c` directly; it is exposed
    /// for analyses that work in feature space.
    pub fn to_ltf(&self) -> LinearThreshold {
        LinearThreshold::new(self.weights.clone(), 0.0)
    }
}

impl BooleanFunction for ArbiterPuf {
    fn num_inputs(&self) -> usize {
        self.weights.len() - 1
    }

    /// Ideal (noise-free) response: logic 1 iff the delay difference is
    /// negative.
    fn eval(&self, challenge: &BitVec) -> bool {
        self.delay_difference(challenge) < 0.0
    }
}

impl PufModel for ArbiterPuf {
    fn eval_noisy<R: Rng + ?Sized>(&self, challenge: &BitVec, rng: &mut R) -> bool {
        let delta = self.delay_difference(challenge);
        let eta = if self.noise_sigma > 0.0 {
            self.noise_sigma * gaussian(rng)
        } else {
            0.0
        };
        delta + eta < 0.0
    }

    /// Bit-sliced ideal batch evaluation (bit-identical to the scalar
    /// path, see [`crate::bitslice`]).
    fn eval_batch(&self, challenges: &[BitVec]) -> Vec<bool> {
        if crate::bitslice::scalar_forced() {
            return crate::bitslice::scalar_eval_batch(self, challenges);
        }
        crate::bitslice::eval_arbiter_batch(&self.weights, challenges)
    }
}

/// Box–Muller standard normal (crate-local copy to avoid a cross-crate
/// private dependency).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > f64::EPSILON {
            let v: f64 = rng.gen();
            return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn responses_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::sample(64, 0.0, &mut rng);
        let ones = (0..4000)
            .filter(|_| puf.eval(&BitVec::random(64, &mut rng)))
            .count();
        let frac = ones as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.15, "response bias {frac}");
    }

    #[test]
    fn ltf_view_matches_delay_sign() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::sample(16, 0.0, &mut rng);
        for _ in 0..100 {
            let c = BitVec::random(16, &mut rng);
            let delta = puf.delay_difference(&c);
            assert_eq!(puf.eval(&c), delta < 0.0);
        }
    }

    #[test]
    fn noise_flips_responses_near_the_boundary() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = ArbiterPuf::sample(64, 0.5, &mut rng);
        let mut any_flip = false;
        for _ in 0..200 {
            let c = BitVec::random(64, &mut rng);
            let ideal = puf.eval(&c);
            for _ in 0..10 {
                if puf.eval_noisy(&c, &mut rng) != ideal {
                    any_flip = true;
                }
            }
        }
        assert!(any_flip, "sigma=0.5 should produce some unstable CRPs");
    }

    #[test]
    fn noise_rate_grows_with_sigma() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = ArbiterPuf::sample(64, 0.0, &mut rng);
        let flip_rate = |sigma: f64, rng: &mut StdRng| {
            let puf = ArbiterPuf::from_weights(base.weights().to_vec(), sigma);
            let mut flips = 0;
            let trials = 2000;
            for _ in 0..trials {
                let c = BitVec::random(64, rng);
                if puf.eval_noisy(&c, rng) != puf.eval(&c) {
                    flips += 1;
                }
            }
            flips as f64 / trials as f64
        };
        let r_small = flip_rate(0.1, &mut rng);
        let r_large = flip_rate(1.0, &mut rng);
        assert!(r_small < r_large, "{r_small} !< {r_large}");
        assert_eq!(flip_rate(0.0, &mut rng), 0.0);
    }

    #[test]
    fn from_weights_round_trip() {
        let w = vec![0.3, -0.2, 1.0];
        let puf = ArbiterPuf::from_weights(w.clone(), 0.1);
        assert_eq!(puf.weights(), w.as_slice());
        assert_eq!(puf.num_inputs(), 2);
        assert_eq!(puf.noise_sigma(), 0.1);
    }

    #[test]
    fn deterministic_given_weights() {
        let puf = ArbiterPuf::from_weights(vec![1.0, -0.5, 0.25], 0.0);
        // c = 00: phi = (1,1,1) -> delta = 0.75 -> response 0.
        assert!(!puf.eval(&BitVec::zeros(2)));
        // c = 10 (bit0=1): phi = (-1,1,1) -> delta = -1.25 -> response 1.
        assert!(puf.eval(&BitVec::from_bools(&[true, false])));
    }

    #[test]
    #[should_panic(expected = "challenge length mismatch")]
    fn wrong_challenge_length_panics() {
        let puf = ArbiterPuf::from_weights(vec![1.0, 1.0, 1.0], 0.0);
        puf.eval(&BitVec::zeros(5));
    }
}
