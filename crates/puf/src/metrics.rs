//! Standard PUF quality metrics: reliability, uniqueness, uniformity.
//!
//! These are the figures of merit hardware papers report for silicon;
//! the workspace uses them to sanity-check that the simulators behave
//! like plausible devices (balanced, reliable at low noise, unique
//! across instances).

use crate::PufModel;
use mlam_boolean::BitVec;
use rand::Rng;

/// Estimated reliability: the average agreement of repeated noisy
/// evaluations with the majority response, over `challenges` random
/// challenges × `repeats` evaluations. 1.0 = perfectly stable.
///
/// # Panics
///
/// Panics if `challenges == 0` or `repeats == 0`.
pub fn reliability<P: PufModel, R: Rng + ?Sized>(
    puf: &P,
    challenges: usize,
    repeats: usize,
    rng: &mut R,
) -> f64 {
    assert!(challenges > 0 && repeats > 0);
    let n = puf.challenge_bits();
    let mut total = 0.0;
    for _ in 0..challenges {
        let c = BitVec::random(n, rng);
        let ones = (0..repeats).filter(|_| puf.eval_noisy(&c, rng)).count();
        let majority = ones.max(repeats - ones);
        total += majority as f64 / repeats as f64;
    }
    total / challenges as f64
}

/// Estimated uniformity: fraction of 1-responses over random challenges.
/// Ideal is 0.5.
pub fn uniformity<P: PufModel, R: Rng + ?Sized>(puf: &P, challenges: usize, rng: &mut R) -> f64 {
    assert!(challenges > 0);
    let n = puf.challenge_bits();
    let ones = (0..challenges)
        .filter(|_| puf.eval(&BitVec::random(n, rng)))
        .count();
    ones as f64 / challenges as f64
}

/// Estimated uniqueness: mean pairwise fractional Hamming distance of
/// the response vectors of several instances over a common challenge
/// set. Ideal is 0.5.
///
/// # Panics
///
/// Panics if fewer than two PUFs are given, challenge lengths differ,
/// or `challenges == 0`.
pub fn uniqueness<P: PufModel, R: Rng + ?Sized>(pufs: &[P], challenges: usize, rng: &mut R) -> f64 {
    assert!(pufs.len() >= 2, "uniqueness needs at least two instances");
    assert!(challenges > 0);
    let n = pufs[0].challenge_bits();
    assert!(
        pufs.iter().all(|p| p.challenge_bits() == n),
        "all instances must share the challenge length"
    );
    let cs: Vec<BitVec> = (0..challenges).map(|_| BitVec::random(n, rng)).collect();
    let responses: Vec<Vec<bool>> = pufs
        .iter()
        .map(|p| cs.iter().map(|c| p.eval(c)).collect())
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..responses.len() {
        for j in i + 1..responses.len() {
            let dist = responses[i]
                .iter()
                .zip(&responses[j])
                .filter(|(a, b)| a != b)
                .count();
            total += dist as f64 / challenges as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use crate::bistable_ring::{BistableRingPuf, BrPufConfig};
    use crate::xor_arbiter::XorArbiterPuf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_device_is_fully_reliable() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
        assert_eq!(reliability(&puf, 50, 7, &mut rng), 1.0);
    }

    #[test]
    fn reliability_degrades_with_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let quiet = ArbiterPuf::sample(64, 0.05, &mut rng);
        let loud = ArbiterPuf::from_weights(quiet.weights().to_vec(), 2.0);
        let r_quiet = reliability(&quiet, 200, 9, &mut rng);
        let r_loud = reliability(&loud, 200, 9, &mut rng);
        assert!(r_quiet > r_loud, "{r_quiet} !> {r_loud}");
        assert!(r_quiet > 0.95);
    }

    #[test]
    fn uniformity_near_half_for_all_models() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = ArbiterPuf::sample(64, 0.0, &mut rng);
        let x = XorArbiterPuf::sample(64, 4, 0.0, &mut rng);
        let b = BistableRingPuf::sample(64, BrPufConfig::calibrated(64), &mut rng);
        assert!((uniformity(&a, 3000, &mut rng) - 0.5).abs() < 0.15);
        assert!((uniformity(&x, 3000, &mut rng) - 0.5).abs() < 0.1);
        assert!((uniformity(&b, 3000, &mut rng) - 0.5).abs() < 0.2);
    }

    #[test]
    fn uniqueness_of_independent_instances_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let pufs: Vec<XorArbiterPuf> = (0..4)
            .map(|_| XorArbiterPuf::sample(64, 2, 0.0, &mut rng))
            .collect();
        let u = uniqueness(&pufs, 1000, &mut rng);
        assert!((u - 0.5).abs() < 0.1, "uniqueness {u}");
    }

    #[test]
    fn uniqueness_of_identical_instances_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
        let twins = vec![puf.clone(), puf];
        assert_eq!(uniqueness(&twins, 500, &mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two instances")]
    fn uniqueness_needs_two() {
        let mut rng = StdRng::seed_from_u64(6);
        let puf = ArbiterPuf::sample(8, 0.0, &mut rng);
        uniqueness(&[puf], 10, &mut rng);
    }
}
