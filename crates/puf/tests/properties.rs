//! Property-based tests for the PUF simulators.

use mlam_boolean::{BitVec, BooleanFunction};
use mlam_puf::challenge::{phi_inverse, phi_transform};
use mlam_puf::{ArbiterPuf, BistableRingPuf, BrPufConfig, PufModel, XorArbiterPuf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The Φ transform is a bijection on {0,1}^n.
    #[test]
    fn phi_round_trip(bits in prop::collection::vec(any::<bool>(), 1..64)) {
        let c = BitVec::from_bools(&bits);
        prop_assert_eq!(phi_inverse(&phi_transform(&c)), c);
    }

    /// The arbiter response equals the sign of w·Φ(c) for any weights.
    #[test]
    fn arbiter_matches_inner_product(
        weights in prop::collection::vec(-3.0f64..3.0, 2..32),
        seed in any::<u64>(),
    ) {
        let n = weights.len() - 1;
        let puf = ArbiterPuf::from_weights(weights.clone(), 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let c = BitVec::random(n, &mut rng);
        let phi = phi_transform(&c);
        let dot: f64 = weights.iter().zip(&phi).map(|(w, p)| w * p).sum();
        prop_assert_eq!(puf.eval(&c), dot < 0.0);
    }

    /// Noiseless devices are deterministic across repeated noisy reads.
    #[test]
    fn noiseless_determinism(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = ArbiterPuf::sample(16, 0.0, &mut rng);
        let x = XorArbiterPuf::sample(16, 3, 0.0, &mut rng);
        let b = BistableRingPuf::sample(16, BrPufConfig::calibrated(16), &mut rng);
        let c = BitVec::random(16, &mut rng);
        for _ in 0..5 {
            prop_assert_eq!(a.eval_noisy(&c, &mut rng), a.eval(&c));
            prop_assert_eq!(x.eval_noisy(&c, &mut rng), x.eval(&c));
            prop_assert_eq!(b.eval_noisy(&c, &mut rng), b.eval(&c));
        }
    }

    /// XOR arbiter response is the XOR of chain responses, always.
    #[test]
    fn xor_composition(seed in any::<u64>(), k in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let puf = XorArbiterPuf::sample(12, k, 0.0, &mut rng);
        let c = BitVec::random(12, &mut rng);
        let xor = puf.chains().iter().fold(false, |acc, ch| acc ^ ch.eval(&c));
        prop_assert_eq!(puf.eval(&c), xor);
    }

    /// CRP sets serialize through serde (JSON-free check via the string
    /// representation round trip used by the serializer).
    #[test]
    fn crp_set_split_partitions(seed in any::<u64>(), frac in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let puf = ArbiterPuf::sample(8, 0.0, &mut rng);
        let set = mlam_puf::crp::collect_uniform(&puf, 50, &mut rng);
        let (a, b) = set.split(frac, &mut rng);
        prop_assert_eq!(a.len() + b.len(), 50);
        prop_assert_eq!(a.challenge_bits(), 8);
        prop_assert_eq!(b.challenge_bits(), 8);
    }

    /// The linear BR PUF config is an LTF: its potential is affine in
    /// each ±1 challenge bit (checked by discrete second differences).
    #[test]
    fn linear_br_is_affine_per_bit(seed in any::<u64>(), i in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let puf = BistableRingPuf::sample(8, BrPufConfig::linear(), &mut rng);
        let c = BitVec::random(8, &mut rng);
        let c_flip = c.with_flipped(i);
        // Affinity in bit i: flipping it changes the potential by a
        // constant independent of the other bits.
        let delta1 = puf.potential(&c_flip) - puf.potential(&c);
        let mut c2 = c.clone();
        let j = (i + 3) % 8;
        c2.flip(j);
        let c2_flip = c2.with_flipped(i);
        let delta2 = puf.potential(&c2_flip) - puf.potential(&c2);
        prop_assert!((delta1 - delta2).abs() < 1e-9, "{delta1} vs {delta2}");
    }
}

#[test]
fn crp_set_serde_round_trip() {
    // serde round trip via the serializer's own data model, using
    // serde_test-style manual tokens is overkill; exercise through the
    // Serialize impl against a simple JSON-ish writer: here we use
    // bincode-free approach — serialize to serde_json-like string via
    // the `serde` "to string" of our own: easiest is to check the
    // Serialize/Deserialize pair through `serde_transcode`-free manual
    // construction. We use `serde_json` only if available; otherwise
    // construct the repr manually.
    use mlam_puf::crp::{Crp, CrpSet};
    let mut set = CrpSet::new(4);
    set.push(Crp::new(
        BitVec::from_bools(&[true, false, true, true]),
        true,
    ));
    set.push(Crp::new(
        BitVec::from_bools(&[false, false, true, false]),
        false,
    ));
    // Round trip through the string challenge encoding used by serde.
    let labeled = set.to_labeled();
    let rebuilt = CrpSet::from_crps(
        4,
        labeled.into_iter().map(|(c, r)| Crp::new(c, r)).collect(),
    );
    assert_eq!(set, rebuilt);
}
