//! Serialization half of the stub: visitor-style, like real serde.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// An error with a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any format.
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format driver receiving the serialized shape of a value.
///
/// Compared to real serde the integer methods are collapsed onto
/// `serialize_i64` / `serialize_u64`, and tuples are serialized as
/// sequences.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences (and tuples / tuple variants).
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs (and struct variants).
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;

    /// Begins a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map of `len` entries (if known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;

    /// Serializes a one-field tuple variant like `E::V(x)`.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;

    /// Begins a multi-field tuple variant like `E::V(a, b)`.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeSeq, Self::Error>;

    /// Begins a struct variant like `E::V { a, b }`.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Begins a tuple, represented as a sequence.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeSeq, Self::Error> {
        self.serialize_seq(Some(len))
    }
}

/// Sub-serializer for sequence elements.
pub trait SerializeSeq {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for map entries.
pub trait SerializeMap {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes one `key: value` entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for struct fields.
pub trait SerializeStruct {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types.

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

// 128-bit integers do not fit the 64-bit serializer methods; they are
// carried as decimal strings (the Deserialize impl parses them back).
impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_tuple($len)?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
}

impl_serialize_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl Serialize for crate::de::Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use crate::de::Content;
        match self {
            Content::Null => serializer.serialize_unit(),
            Content::Bool(v) => serializer.serialize_bool(*v),
            Content::I64(v) => serializer.serialize_i64(*v),
            Content::U64(v) => serializer.serialize_u64(*v),
            Content::F64(v) => serializer.serialize_f64(*v),
            Content::Str(v) => serializer.serialize_str(v),
            Content::Seq(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Content::Map(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}
