//! Offline stub of the [`serde`](https://serde.rs) framework.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the `serde` API surface the mlam workspace uses — the
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize,
//! Deserialize)]`, and the [`Serializer`] / [`Deserializer`] driver
//! traits — over a deliberately simplified data model:
//!
//! - Serialization is visitor-style, close to real serde: a
//!   [`Serializer`] receives primitive values, sequences, maps, structs
//!   and enum variants.
//! - Deserialization is **content-tree based**: a [`Deserializer`]
//!   produces a [`de::Content`] value tree (null / bool / integer /
//!   float / string / seq / map) and `Deserialize` impls pattern-match
//!   on it. This sidesteps real serde's `Visitor` machinery while
//!   keeping the public trait names and signatures source-compatible
//!   for the idioms used in this workspace (including manual impls that
//!   delegate to a derived mirror type, as in `mlam-puf`'s `CrpSet`).
//!
//! Formats plug in exactly like real serde: see the vendored
//! `serde_json` for the JSON implementation used by `mlam-telemetry`'s
//! run manifests.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the separate proc-macro crate and are
// re-exported under the same names as the traits, exactly like real
// serde with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
