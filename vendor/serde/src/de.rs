//! Deserialization half of the stub: content-tree based.
//!
//! A format's [`Deserializer`] parses its input into a [`Content`] tree;
//! [`Deserialize`] impls then destructure the tree. The derive macro
//! generates exactly that destructuring for structs and enums.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// An error with a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The stub's self-describing data model — the deserialization
/// counterpart of the [`crate::Serializer`] method set. JSON maps onto
/// it exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null` / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (also tuples and tuple variants).
    Seq(Vec<Content>),
    /// A map with string keys (also structs and struct variants).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human-readable name of the content's kind, for error
    /// messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// Removes and returns the value under `key`, if present.
    ///
    /// Only meaningful on [`Content::Map`]; returns `None` otherwise.
    pub fn take_entry(&mut self, key: &str) -> Option<Content> {
        if let Content::Map(entries) = self {
            let idx = entries.iter().position(|(k, _)| k == key)?;
            Some(entries.swap_remove(idx).1)
        } else {
            None
        }
    }
}

/// A format driver producing the parsed shape of its input.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Parses the whole input into a [`Content`] tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A data structure that can be deserialized from any format.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the deserializer's input.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an already-parsed [`Content`] tree, used to
/// deserialize nested values (fields, elements) out of a larger tree.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: std::marker::PhantomData<E>,
}

impl<E: Error> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: std::marker::PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes a `T` out of a content subtree — the workhorse behind
/// every generated field/element extraction.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

/// Removes field `key` from a struct's map entries and deserializes it.
///
/// Used by `#[derive(Deserialize)]`; unknown extra fields are ignored,
/// missing fields are an error.
pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
    entries: &mut Vec<(String, Content)>,
    struct_name: &str,
    key: &str,
) -> Result<T, E> {
    match entries.iter().position(|(k, _)| k == key) {
        Some(idx) => from_content(entries.swap_remove(idx).1),
        None => Err(E::custom(format!(
            "missing field `{key}` for struct {struct_name}"
        ))),
    }
}

/// Like [`take_field`], but a missing field deserializes as
/// `Default::default()` — the behavior behind `#[serde(default)]`.
pub fn take_field_or_default<'de, T: Deserialize<'de> + Default, E: Error>(
    entries: &mut Vec<(String, Content)>,
    key: &str,
) -> Result<T, E> {
    match entries.iter().position(|(k, _)| k == key) {
        Some(idx) => from_content(entries.swap_remove(idx).1),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)))),
                    other => Err(D::Error::custom(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit integers do not fit the content tree's 64-bit arms, so they
// round-trip as decimal strings (see the matching Serialize impl).
impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|_| D::Error::custom(format!("invalid u128 string '{s}'"))),
            Content::U64(v) => Ok(u128::from(v)),
            Content::I64(v) => u128::try_from(v)
                .map_err(|_| D::Error::custom(format!("integer {v} out of range for u128"))),
            other => Err(D::Error::custom(format!(
                "expected u128 (string or integer), found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(D::Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            // Non-finite floats round-trip through `null` in JSON.
            Content::Null => Ok(f64::NAN),
            other => Err(D::Error::custom(format!(
                "expected float, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(v) => Ok(v),
            other => Err(D::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => Err(D::Error::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => from_content::<T, D::Error>(content).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| from_content::<T, D::Error>(item))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+ ; $len:expr)),*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) => {
                        if items.len() != $len {
                            return Err(D::Error::custom(format!(
                                "expected tuple of {} elements, found {}",
                                $len,
                                items.len()
                            )));
                        }
                        let mut iter = items.into_iter();
                        Ok(($(from_content::<$name, D::Error>(
                            iter.next().expect("length checked"),
                        )?,)+))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected sequence, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_deserialize_tuple!((T0; 1), (T0, T1; 2), (T0, T1, T2; 3), (T0, T1, T2, T3; 4));

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, from_content::<V, D::Error>(v)?)))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, from_content::<V, D::Error>(v)?)))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}
