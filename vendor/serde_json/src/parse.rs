//! JSON parsing: recursive descent into the serde stub's
//! [`Content`](serde::de::Content) tree, then typed deserialization.

use crate::Error;
use serde::de::Content;

/// Maximum nesting depth, so malformed deeply-nested input errors out
/// instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Parses `input` as JSON and deserializes a `T` from it.
pub fn from_str<'de, T: serde::Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    serde::de::from_content(content)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Content::Null),
            Some(b't') if self.consume_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(elements));
        }
        loop {
            elements.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(elements));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy runs of plain bytes in one go; they are valid UTF-8
            // because the input is a &str.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input is valid UTF-8 and run breaks are ASCII"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: must pair with \uDC00..\uDFFF.
                    if !self.consume_literal("\\u") {
                        return Err(self.error("unpaired high surrogate"));
                    }
                    let second = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))?);
            }
            _ => return Err(self.error(format!("invalid escape '\\{}'", c as char))),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.error("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number text is ASCII");
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            // Integer out of 64-bit range: fall through to f64.
        }
        // f64 parse saturates huge exponents (e.g. 1e999) to infinity,
        // which is the non-finite round-trip convention used by write.rs.
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}
