//! Offline stub of `serde_json`: a JSON format implementation for the
//! vendored serde stub.
//!
//! Provides the subset the mlam workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_writer`], and a [`Value`]
//! tree (an alias of the stub's content model, which is JSON-shaped
//! already).
//!
//! Deviations from real `serde_json`, chosen for lossless round-trips
//! of experiment data:
//!
//! - non-finite floats serialize as `1e999` / `-1e999` (which Rust's
//!   float parser reads back as ±infinity) and NaN as `null`;
//! - map keys must be strings (as in JSON itself).

mod parse;
mod write;

pub use parse::from_str;
pub use write::{to_string, to_string_pretty, to_writer};

/// A parsed JSON value — the serde stub's content tree.
pub type Value = serde::de::Content;

/// Errors from JSON serialization or parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    let json = to_string(value)?;
    from_str(&json)
}

/// Deserializes a `T` out of a [`Value`] tree.
pub fn from_value<'de, T: serde::Deserialize<'de>>(value: Value) -> Result<T, Error> {
    serde::de::from_content(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: i64,
        y: f64,
        label: String,
        tags: Vec<String>,
        next: Option<bool>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        New(f64),
        Pair(u64, bool),
        Named { a: String, b: Vec<u64> },
    }

    #[test]
    fn struct_round_trip() {
        let p = Point {
            x: -4,
            y: 2.5,
            label: "hello \"world\"\n".into(),
            tags: vec!["a".into(), "b".into()],
            next: None,
        };
        let json = to_string(&p).unwrap();
        let back: Point = from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn enum_round_trip_all_variant_kinds() {
        for k in [
            Kind::Unit,
            Kind::New(0.125),
            Kind::Pair(7, true),
            Kind::Named {
                a: "x".into(),
                b: vec![1, 2, 3],
            },
        ] {
            let json = to_string(&k).unwrap();
            let back: Kind = from_str(&json).unwrap();
            assert_eq!(back, k, "json was {json}");
        }
    }

    #[test]
    fn unit_variant_is_a_bare_string() {
        assert_eq!(to_string(&Kind::Unit).unwrap(), "\"Unit\"");
    }

    #[test]
    fn maps_round_trip() {
        let mut m: BTreeMap<String, u64> = BTreeMap::new();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1,\"b\":2}");
        let back: BTreeMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let json = to_string(&f64::INFINITY).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert!(back.is_infinite() && back > 0.0);
        let back: f64 = from_str(&to_string(&f64::NEG_INFINITY).unwrap()).unwrap();
        assert!(back.is_infinite() && back < 0.0);
        let back: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_nests() {
        let p = Point {
            x: 1,
            y: 0.0,
            label: "l".into(),
            tags: vec![],
            next: Some(false),
        };
        let pretty = to_string_pretty(&p).unwrap();
        assert!(pretty.contains("\n  \"x\": 1"), "{pretty}");
        let back: Point = from_str(&pretty).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\t newline\n quote\" backslash\\ unicode\u{1F980} control\u{0007}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("{\"a\":}").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn value_round_trip() {
        let v: Value = from_str("{\"a\":[1,2.5,null,true,\"s\"]}").unwrap();
        let json = to_string(&v).unwrap();
        let v2: Value = from_str(&json).unwrap();
        assert_eq!(v, v2);
    }
}
