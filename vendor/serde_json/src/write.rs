//! JSON emission: a [`serde::Serializer`] writing into a `String`.

use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        pretty: false,
        indent: 0,
    })?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        pretty: true,
        indent: 0,
    })?;
    Ok(out)
}

/// Serializes `value` as compact JSON into an `io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let json = to_string(value)?;
    writer
        .write_all(json.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

struct JsonSerializer<'a> {
    out: &'a mut String,
    pretty: bool,
    indent: usize,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("null");
    } else if v == f64::INFINITY {
        // Rust's float parser saturates overflowing literals to
        // infinity, so this survives a round-trip through `from_str`.
        out.push_str("1e999");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        out.push_str(&v.to_string());
    }
}

/// Shared state of an in-progress container.
struct Container<'a> {
    out: &'a mut String,
    pretty: bool,
    indent: usize,
    has_elements: bool,
    close: char,
    /// Set for `{"Variant": [...]}`-style containers, which must close
    /// the wrapping one-entry object after the payload container.
    wrap_object: bool,
}

impl<'a> Container<'a> {
    fn open(ser: JsonSerializer<'a>, open: char, close: char) -> Self {
        ser.out.push(open);
        Container {
            out: ser.out,
            pretty: ser.pretty,
            indent: ser.indent + 1,
            has_elements: false,
            close,
            wrap_object: false,
        }
    }

    fn element_separator(&mut self) {
        if self.has_elements {
            self.out.push(',');
        }
        self.has_elements = true;
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn value_serializer(&mut self) -> JsonSerializer<'_> {
        JsonSerializer {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
        }
    }

    fn finish(self) -> Result<(), Error> {
        if self.pretty && self.has_elements {
            self.out.push('\n');
            for _ in 0..self.indent - 1 {
                self.out.push_str("  ");
            }
        }
        self.out.push(self.close);
        if self.wrap_object {
            if self.pretty {
                self.out.push('\n');
                for _ in 0..self.indent.saturating_sub(2) {
                    self.out.push_str("  ");
                }
            }
            self.out.push('}');
        }
        Ok(())
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Container<'a>;
    type SerializeMap = Container<'a>;
    type SerializeStruct = Container<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Container<'a>, Error> {
        Ok(Container::open(self, '[', ']'))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Container<'a>, Error> {
        Ok(Container::open(self, '{', '}'))
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Container<'a>, Error> {
        Ok(Container::open(self, '{', '}'))
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        let mut map = self.serialize_map(Some(1))?;
        map.serialize_entry(variant, value)?;
        SerializeMap::end(map)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Container<'a>, Error> {
        // `{"Variant": [` ... `]}` — the container closes the array and
        // the wrapping object together via the two-char close trick.
        let mut container = Container::open(self, '{', '}');
        container.element_separator();
        write_escaped(container.out, variant);
        container.out.push(':');
        if container.pretty {
            container.out.push(' ');
        }
        container.out.push('[');
        container.has_elements = false;
        container.close = ']';
        container.wrap_object = true;
        Ok(container)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Container<'a>, Error> {
        let mut container = Container::open(self, '{', '}');
        container.element_separator();
        write_escaped(container.out, variant);
        container.out.push(':');
        if container.pretty {
            container.out.push(' ');
        }
        container.out.push('{');
        container.has_elements = false;
        container.close = '}';
        container.wrap_object = true;
        Ok(container)
    }
}

impl SerializeSeq for Container<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element_separator();
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeMap for Container<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.element_separator();
        // JSON keys must be strings: serialize the key and reject
        // anything that did not come out as a string literal.
        let start = self.out.len();
        key.serialize(self.value_serializer())?;
        if !self.out[start..].starts_with('"') {
            return Err(Error::new("JSON map keys must be strings"));
        }
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStruct for Container<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.element_separator();
        write_escaped(self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}
