//! Offline stub of [`proptest`]: random-input property testing with the
//! `proptest!` macro surface the mlam workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated input
//!   as-is; it is not minimized.
//! - **Deterministic.** Every runner starts from the same fixed seed,
//!   so test outcomes are reproducible across runs and machines.
//! - **Rejections count as passes.** `prop_assume!` skips the case but
//!   does not generate a replacement, and there is no rejection cap.
//! - `proptest-regressions` files are ignored.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG threaded through strategy generation.
    pub type TestRng = StdRng;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
            )+
        };
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),+) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        // Sampling the half-open interval and rescaling
                        // is close enough for a test-input stub; the
                        // exact upper endpoint has measure zero anyway.
                        let (start, end) = (*self.start(), *self.end());
                        start + rng.gen::<$t>() * (end - start)
                    }
                }
            )+
        };
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($S:ident $idx:tt),+);)+) => {
            $(
                impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                    type Value = ($($S::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategies! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform over the whole value domain via the rand stub.
    pub struct StandardAny<T>(PhantomData<T>);

    macro_rules! standard_arbitrary {
        ($($t:ty),+) => {
            $(
                impl Strategy for StandardAny<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen()
                    }
                }
                impl Arbitrary for $t {
                    type Strategy = StandardAny<$t>;
                    fn arbitrary() -> Self::Strategy {
                        StandardAny(PhantomData)
                    }
                }
            )+
        };
    }

    standard_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prop {
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;

        /// Inclusive bounds on a generated collection length.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_inclusive: n,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max_inclusive: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    min: *r.start(),
                    max_inclusive: *r.end(),
                }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec`s of `size.into()` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::arbitrary::Arbitrary;
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;

        /// A position into a collection whose length is only known at
        /// use time; `index(len)` maps it uniformly into `0..len`.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct Index {
            raw: u64,
        }

        impl Index {
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index on an empty collection");
                (self.raw % size as u64) as usize
            }
        }

        pub struct IndexStrategy;

        impl Strategy for IndexStrategy {
            type Value = Index;
            fn generate(&self, rng: &mut TestRng) -> Index {
                Index { raw: rng.gen() }
            }
        }

        impl Arbitrary for Index {
            type Strategy = IndexStrategy;
            fn arbitrary() -> Self::Strategy {
                IndexStrategy
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fixed runner seed: outcomes are reproducible by construction.
    const RUNNER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not produce a pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(RUNNER_SEED),
            }
        }

        /// Runs `test` against `config.cases` generated inputs.
        /// Assertion panics inside `test` propagate after the failing
        /// input is printed to stderr (there is no shrinking).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let described = format!("{value:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) | Ok(Err(TestCaseError::Reject)) => {}
                    Err(payload) => {
                        eprintln!("proptest stub: case {case} failed for input {described}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            Ok(())
        }
    }
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies, as in real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn doubling(x in 0u64..1000) { prop_assert_eq!(x + x, 2 * x); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($config);
            let __strategy = ($($strat,)+);
            let __outcome = __runner.run(&__strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(__message) = __outcome {
                ::core::panic!("{}", __message);
            }
        }
        $crate::__proptest_fns!($config; $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::core::assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let strategy = prop::collection::vec(0u64..100, 3..10);
        let mut rng_a = TestRng::seed_from_u64(7);
        let mut rng_b = TestRng::seed_from_u64(7);
        assert_eq!(strategy.generate(&mut rng_a), strategy.generate(&mut rng_b));
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let strategy = prop::collection::vec(any::<bool>(), 2..5);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(
            x in 1usize..50,
            flip in any::<bool>(),
            idx in any::<prop::sample::Index>(),
            v in prop::collection::vec(0i32..10, 1..8),
        ) {
            prop_assume!(!v.is_empty());
            let i = idx.index(v.len());
            prop_assert!(i < v.len());
            let doubled = if flip { 2 * x } else { x + x };
            prop_assert_eq!(doubled, 2 * x);
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn flat_map_and_just(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u8..=9, n))
        })) {
            prop_assert_eq!(pair.1.len(), pair.0);
        }

        #[test]
        fn map_works(y in (0u64..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(y % 3, 0);
        }
    }
}
