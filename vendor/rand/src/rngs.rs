//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via
/// SplitMix64.
///
/// Not the ChaCha12 core of the real `rand::rngs::StdRng` — streams
/// differ from upstream — but fast, full-period, and deterministic per
/// seed, which is all the workspace relies on.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::from_state(seed)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility with `rand::rngs::SmallRng`.
pub type SmallRng = StdRng;
