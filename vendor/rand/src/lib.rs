//! Offline stub of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the mlam workspace uses:
//!
//! - [`Rng`]: `gen`, `gen_bool`, `gen_range` (integer and float ranges);
//! - [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! - [`seq::SliceRandom`]: `choose` and `shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, so streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on
//! *deterministic* streams for a given seed, which this provides.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. Generic over the
/// sampled type `T` (as in real rand 0.8) so that integer literals in
/// the range infer their type from the expected output.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` (`span == 0` means the full 2^64
/// range) by widening multiplication with rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire's method: multiply-shift with rejection.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from system entropy (stubbed: mixes the
    /// current time; use [`SeedableRng::seed_from_u64`] for
    /// reproducibility).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

pub use rngs::StdRng;

/// A convenience generator seeded from entropy (thread-local in the
/// real crate; here a fresh entropy-seeded [`StdRng`]).
pub fn thread_rng() -> StdRng {
    StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=10usize);
            assert!((3..=10).contains(&v));
            let w = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        takes_dyn(&mut rng);
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
