//! Sequence-related random operations (`rand::seq` subset).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements should not shuffle to identity");
    }
}
