//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes the mlam workspace uses — **non-generic** structs with
//! named fields, unit structs, and enums whose variants are unit,
//! tuple, or struct-like — using only the standard `proc_macro` API
//! (the real crate's `syn`/`quote` stack is unavailable offline).
//!
//! Field types are never inspected: generated code relies on type
//! inference (`&self.field` for serialization, constructor position
//! for deserialization), which is what keeps hand-rolled parsing
//! tractable. The only `#[serde(...)]` attribute supported is
//! `#[serde(default)]` on a named field (a missing field
//! deserializes as `Default::default()` — used for
//! forward-compatible record formats like the run manifest);
//! anything unsupported fails loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One named field and the serde options that apply to it.
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing field deserializes as
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    i += 1;

    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "serde_derive stub: generic type `{name}` is not supported; \
             write a manual impl or drop the generics"
        ),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            assert_eq!(kind, "struct", "unexpected `;` after enum name");
            Shape::UnitStruct { name }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body = g.stream();
            if kind == "struct" {
                Shape::Struct {
                    name,
                    fields: parse_named_fields(body),
                }
            } else {
                Shape::Enum {
                    name,
                    variants: parse_variants(body),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive stub: tuple struct `{name}` is not supported; use named fields")
        }
        other => panic!("serde_derive stub: unexpected token after `{name}`: {other:?}"),
    }
}

/// Extracts field names from `a: T, b: U, ...`, honoring
/// `#[serde(default)]`, ignoring other attributes and visibility, and
/// never inspecting the types themselves (angle-bracket depth is
/// tracked so commas inside `Vec<(A, B)>` don't split fields).
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut default = false;
    while i < tokens.len() {
        // Process attributes and skip visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    default |= parse_serde_attribute(g.stream());
                }
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive stub: expected `:` after field `{name}`, found {other:?}")
            }
        }
        fields.push(Field {
            name,
            default: std::mem::take(&mut default),
        });
        // Skip the type: everything until a comma at angle depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Inspects one attribute body (`[...]`). Returns `true` when it is
/// `#[serde(default)]`; other serde options panic (unsupported), and
/// non-serde attributes (doc comments, derives) are ignored.
fn parse_serde_attribute(body: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let Some(TokenTree::Group(options)) = tokens.get(1) else {
        panic!("serde_derive stub: expected `#[serde(...)]` options");
    };
    let options: Vec<TokenTree> = options.stream().into_iter().collect();
    match options.as_slice() {
        [TokenTree::Ident(id)] if id.to_string() == "default" => true,
        other => {
            panic!("serde_derive stub: only `#[serde(default)]` is supported, found {other:?}")
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_elements(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the next variant (past the separating comma).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Counts the comma-separated elements of a tuple variant's field list.
fn count_tuple_elements(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle = 0i32;
    let mut in_element = false;
    for token in body {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if in_element {
                    count += 1;
                    in_element = false;
                }
                continue;
            }
            _ => {}
        }
        in_element = true;
    }
    if in_element {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------
// Codegen: Serialize

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                   -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 ::serde::Serializer::serialize_unit(serializer)\n\
               }}\n\
             }}"
        ),
        Shape::Struct { name, fields } => {
            let mut body = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(\
                   serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                let f = &f.name;
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                       &mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                       -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     {body}\
                   }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                           serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => \
                           ::serde::Serializer::serialize_newtype_variant(\
                             serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut inner = format!(
                            "let mut __state = \
                               ::serde::Serializer::serialize_tuple_variant(\
                                 serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n"
                        );
                        for b in &binders {
                            inner.push_str(&format!(
                                "::serde::ser::SerializeSeq::serialize_element(\
                                   &mut __state, {b})?;\n"
                            ));
                        }
                        inner.push_str("::serde::ser::SerializeSeq::end(__state)\n");
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n{inner}}}\n",
                            binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inner = format!(
                            "let mut __state = \
                               ::serde::Serializer::serialize_struct_variant(\
                                 serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            let f = &f.name;
                            inner.push_str(&format!(
                                "::serde::ser::SerializeStruct::serialize_field(\
                                   &mut __state, \"{f}\", {f})?;\n"
                            ));
                        }
                        inner.push_str("::serde::ser::SerializeStruct::end(__state)\n");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}}}\n",
                            fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                       -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------
// Codegen: Deserialize

fn gen_field_extraction(owner: &str, fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if f.default {
                format!(
                    "{name}: ::serde::de::take_field_or_default::<_, __D::Error>(\
                       &mut __entries, \"{name}\")?,\n"
                )
            } else {
                format!(
                    "{name}: ::serde::de::take_field::<_, __D::Error>(\
                       &mut __entries, \"{owner}\", \"{name}\")?,\n"
                )
            }
        })
        .collect()
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct { name } => format!(
            "match __content {{\n\
               ::serde::de::Content::Null => ::core::result::Result::Ok({name}),\n\
               __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                   \"expected null for unit struct {name}, found {{}}\", __other.kind()))),\n\
             }}"
        ),
        Shape::Struct { name, fields } => {
            let extraction = gen_field_extraction(name, fields);
            format!(
                "match __content {{\n\
                   ::serde::de::Content::Map(mut __entries) => \
                     ::core::result::Result::Ok({name} {{\n{extraction}}}),\n\
                   __other => ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                       \"expected map for struct {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                           ::serde::de::from_content::<_, __D::Error>(__value)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let extract: String = (0..*n)
                            .map(|_| {
                                "::serde::de::from_content::<_, __D::Error>(\
                                   __iter.next().expect(\"length checked\"))?,\n"
                                    .to_string()
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __value {{\n\
                               ::serde::de::Content::Seq(__items) if __items.len() == {n} => {{\n\
                                 let mut __iter = __items.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{vname}(\n{extract}))\n\
                               }}\n\
                               _ => ::core::result::Result::Err(\
                                 <__D::Error as ::serde::de::Error>::custom(\
                                   \"expected sequence of {n} elements for variant \
                                    {name}::{vname}\")),\n\
                             }},\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let owner = format!("{name}::{vname}");
                        let extraction = gen_field_extraction(&owner, fields);
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __value {{\n\
                               ::serde::de::Content::Map(mut __entries) => \
                                 ::core::result::Result::Ok({name}::{vname} {{\n{extraction}}}),\n\
                               _ => ::core::result::Result::Err(\
                                 <__D::Error as ::serde::de::Error>::custom(\
                                   \"expected map for variant {name}::{vname}\")),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __content {{\n\
                   ::serde::de::Content::Str(__variant) => match __variant.as_str() {{\n\
                     {unit_arms}\
                     __other => ::core::result::Result::Err(\
                       <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                         \"unknown unit variant `{{__other}}` of enum {name}\"))),\n\
                   }},\n\
                   ::serde::de::Content::Map(mut __entries) if __entries.len() == 1 => {{\n\
                     let (__variant, __value) = __entries.pop().expect(\"length checked\");\n\
                     match __variant.as_str() {{\n\
                       {data_arms}\
                       __other => ::core::result::Result::Err(\
                         <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                           \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                     }}\n\
                   }}\n\
                   __other => ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                       \"expected variant of enum {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    let name = match shape {
        Shape::Struct { name, .. } | Shape::UnitStruct { name } | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D)\n\
               -> ::core::result::Result<Self, __D::Error> {{\n\
             let __content = ::serde::Deserializer::deserialize_content(deserializer)?;\n\
             {body}\n\
           }}\n\
         }}"
    )
}
