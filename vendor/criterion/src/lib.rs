//! Offline stub of `criterion`: just enough harness to compile and
//! run the workspace's `benches/` targets without the real crate.
//!
//! Each `bench_function` runs its routine `sample_size` times and
//! prints the median wall-clock time per iteration to stderr. There is
//! no warm-up, outlier analysis, or HTML report — this is a smoke
//! harness, not a statistics engine.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; the stub runs one input per
/// iteration regardless, so the variants only exist for API parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        eprintln!(
            "bench {id}: median {median:?} over {} samples",
            bencher.samples.len()
        );
        self
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("stub/self_test", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0usize;
        c.bench_function("stub/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
