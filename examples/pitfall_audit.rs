//! A guided audit of the paper's pitfalls: five claim-vs-attack pairs
//! run through the comparability detector, each annotated with the
//! experiment in this repository that demonstrates it empirically.
//!
//! Run with: `cargo run -p mlam-examples --example pitfall_audit`

use mlam::adversary::{
    AccessModel, AdversaryModel, DistributionModel, InferenceGoal, RepresentationModel,
};

fn audit(title: &str, claim: &AdversaryModel, attack: &AdversaryModel, witness: &str) {
    println!("── {title}");
    println!("   claim proven under : {claim}");
    println!("   attack operates in : {attack}");
    let verdict = claim.comparability(attack);
    if verdict.is_comparable() {
        println!("   verdict            : comparable — the claim constrains this attack");
    } else {
        println!("   verdict            : NOT comparable");
        for p in verdict.pitfalls() {
            println!("     pitfall: {p}");
        }
    }
    println!("   empirical witness  : {witness}\n");
}

fn main() {
    println!("Pitfall audit — every mismatch from the paper, detected mechanically\n");

    // 1. Distribution: the [9] bound vs the [17] attack.
    audit(
        "1. Distribution axis — XOR APUF hardness [9] vs RocknRoll attack [17]",
        &AdversaryModel::distribution_free_claim(),
        &AdversaryModel::uniform_example_attack(),
        "cargo run -p mlam-bench --bin rocknroll (75 % accuracy at k >> ln n)",
    );

    // 2. Access: random-example security vs a membership-query attacker.
    let random_claim = AdversaryModel {
        distribution: DistributionModel::Uniform,
        access: AccessModel::RandomExamples,
        representation: RepresentationModel::Improper,
        goal: InferenceGoal::Approximate,
    };
    audit(
        "2. Access axis — random-example security claim vs membership queries (Cor. 2)",
        &random_claim,
        &AdversaryModel::membership_query_attack(),
        "cargo run -p mlam-bench --bin corollary2 (exact recovery, poly(n) queries)",
    );

    // 3. Representation: a proper-class hardness claim vs an improper
    // learner.
    let proper_claim = AdversaryModel {
        distribution: DistributionModel::Uniform,
        access: AccessModel::RandomExamples,
        representation: RepresentationModel::proper("LTF"),
        goal: InferenceGoal::Approximate,
    };
    audit(
        "3. Representation axis — 'BR PUFs resist LTF learners' vs improper attacks",
        &proper_claim,
        &AdversaryModel::uniform_example_attack(),
        "cargo run -p mlam-bench --bin ablations (proper 56 % vs improper 88 %)",
    );

    // 4. Exact vs approximate inference.
    let exact_claim = AdversaryModel {
        distribution: DistributionModel::Uniform,
        access: AccessModel::MembershipQueries,
        representation: RepresentationModel::Improper,
        goal: InferenceGoal::Exact,
    };
    let approx_attack = AdversaryModel {
        goal: InferenceGoal::Approximate,
        ..exact_claim.clone()
    };
    audit(
        "4. Inference goal — exact-resilient locking (SARLock) vs approximate attacks",
        &exact_claim,
        &approx_attack,
        "cargo run -p mlam-bench --bin exact_vs_approx (2^k DIPs vs instant 97 %)",
    );

    // 5. The sound case: matching settings ARE comparable.
    audit(
        "5. Control — identical settings transfer",
        &AdversaryModel::uniform_example_attack(),
        &AdversaryModel::uniform_example_attack(),
        "any table driver; like-for-like numbers may be compared",
    );

    println!(
        "Every 'NOT comparable' verdict above is a published-literature \
         comparison the paper flags;\nthe detector reproduces its reasoning \
         from the adversary-model axes alone."
    );
}
