//! Logic locking under three access models: the exact SAT attack
//! (chosen inputs), AppSAT (chosen + random, approximate) and the pure
//! random-example PAC attack — Sections II-A and IV-A, executable.
//!
//! Run with: `cargo run --release -p mlam-examples --example logic_locking_attacks`

use mlam::locking::appsat::{appsat, AppSatConfig};
use mlam::locking::combinational::lock_xor;
use mlam::locking::pac_attack::{pac_attack, PacAttackConfig};
use mlam::locking::sat_attack::{sat_attack, SatAttackConfig};
use mlam::netlist::bench_format::to_bench;
use mlam::netlist::generate::random_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // A random combinational design, locked with 12 XOR/XNOR key gates.
    let oracle = random_circuit(10, 70, 3, &mut rng);
    let locked = lock_xor(&oracle, 12, &mut rng);
    println!(
        "design: {} inputs, {} gates, {} outputs; locked with {} key bits",
        oracle.num_inputs(),
        oracle.num_gates(),
        oracle.num_outputs(),
        locked.num_key_bits()
    );
    println!(
        "locked netlist (.bench excerpt):\n{}",
        to_bench(locked.netlist())
            .lines()
            .take(8)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // 1. SAT attack: membership queries, exact key.
    let sat = sat_attack(&locked, &oracle, SatAttackConfig::default());
    println!(
        "\nSAT attack (membership queries, exact): key {} in {} DIPs, \
         functionally correct: {}",
        sat.key, sat.iterations, sat.key_is_functionally_correct
    );

    // 2. AppSAT: approximate, settles early.
    let app = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
    println!(
        "AppSAT (approximate): {:.2}% accuracy after {} DIPs + {} random queries \
         (settled early: {})",
        app.estimated_accuracy * 100.0,
        app.dip_iterations,
        app.random_queries,
        app.settled_early
    );

    // 3. PAC attack: random examples only — the weakest access.
    let pac = pac_attack(&locked, &oracle, PacAttackConfig::default(), &mut rng);
    println!(
        "PAC attack (random examples only): {:.2}% accuracy from {} examples \
         (equivalence simulation accepted: {})",
        pac.estimated_accuracy * 100.0,
        pac.examples_used,
        pac.accepted
    );

    println!(
        "\nlesson (Section IV): {} chosen inputs did what {} random examples were \
         needed for — access is a security parameter, not a footnote.",
        sat.iterations, pac.examples_used
    );
}
