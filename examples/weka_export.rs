//! Weka interoperability: export simulated CRPs in the ARFF format the
//! paper's own Table II tooling consumed ("the Perceptron algorithm
//! embedded in Weka [27]").
//!
//! Run with: `cargo run -p mlam-examples --example weka_export`

use mlam::puf::arff::{from_arff, to_arff};
use mlam::puf::crp::collect_stable;
use mlam::puf::{BistableRingPuf, BrPufConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(27);
    // The paper's Table II device class: a BR PUF, stable CRPs only.
    let puf = BistableRingPuf::sample(16, BrPufConfig::calibrated_accuracy(16), &mut rng);
    let crps = collect_stable(&puf, 1000, 5, 1.0, &mut rng);
    let arff = to_arff(&crps, "br_puf_16_stable_crps");

    println!("--- ARFF header + first rows -------------------------------");
    for line in arff.lines().take(24) {
        println!("{line}");
    }
    println!("...  ({} data rows total)", crps.len());

    // Round-trip sanity: the exported file parses back identically.
    let back = from_arff(&arff).expect("parse our own export");
    assert_eq!(back, crps);
    println!(
        "\nround-trip check: OK ({} CRPs, {} challenge bits)",
        back.len(),
        back.challenge_bits()
    );
    println!("feed this file to `weka.classifiers.functions.Perceptron` to rerun Table II on the original tooling.");
}
