//! The BR PUF representation pitfall (Sections V-A, Tables II & III):
//! build the Chow-parameter LTF surrogate, watch its accuracy plateau,
//! and let the halfspace tester certify the representation mismatch.
//!
//! Run with: `cargo run --release -p mlam-examples --example br_puf_pitfall`

use mlam::boolean::testing::{HalfspaceTester, Verdict};
use mlam::experiments::table3::spectral_distance_lower_bound;
use mlam::learn::chow::{table_ii_procedure, ChowConfig};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::lmn::{lmn_learn, LmnConfig};
use mlam::puf::{BistableRingPuf, BrPufConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 32;
    let puf = BistableRingPuf::sample(n, BrPufConfig::calibrated(n), &mut rng);
    println!("device: {n}-stage Bistable Ring PUF (calibrated interaction model)\n");

    // Table II in miniature: the Chow-LTF surrogate's accuracy vs CRPs.
    println!("Chow-parameter LTF surrogate (Table II procedure):");
    let test = LabeledSet::sample(&puf, 8000, &mut rng);
    for budget in [1000usize, 2500, 5000, 10_000] {
        let train = LabeledSet::sample(&puf, budget, &mut rng);
        let cell = table_ii_procedure(&train, &test, ChowConfig::default(), 50);
        println!(
            "  {budget:>6} CRPs -> {:.2}% accuracy",
            cell.test_accuracy * 100.0
        );
    }
    println!("  (the plateau: more CRPs cannot fix a wrong representation)\n");

    // Table III in miniature: the halfspace tester's verdict.
    let data = LabeledSet::sample(&puf, 6000, &mut rng);
    let report = HalfspaceTester::new(0.1, 0.99).run(n, data.pairs(), &mut rng);
    println!("halfspace tester (Table III procedure):");
    println!(
        "  level-<=1 Fourier weight: {:.3} (halfspace floor ~ 0.64)",
        report.level_one_weight
    );
    println!(
        "  distance from any halfspace: {:.1}% (spectral lower bound {:.1}%)",
        report.distance_estimate * 100.0,
        spectral_distance_lower_bound(report.level_one_weight) * 100.0
    );
    println!(
        "  verdict: {}",
        match report.verdict {
            Verdict::Halfspace => "consistent with a halfspace",
            Verdict::FarFromHalfspace => "far from every halfspace",
        }
    );

    // The remedy: drop the representation restriction (improper
    // learning, Section V-B).
    let train = LabeledSet::sample(&puf, 10_000, &mut rng);
    let improper = lmn_learn(&train, LmnConfig::new(2));
    println!(
        "\nimproper low-degree (LMN, d=2) hypothesis: {:.2}% accuracy — \
         the axis that actually moved the needle",
        test.accuracy_of(&improper.hypothesis) * 100.0
    );
}
