//! Sequential obfuscation vs. Angluin's L* (Section V-B): learn the
//! HARPOON-obfuscated FSM as a DFA and read the unlock sequence off the
//! learned model.
//!
//! Run with: `cargo run -p mlam-examples --example sequential_lstar`

use mlam::locking::sequential::{lstar_attack, Fsm, ObfuscatedFsm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // The secret design: an 8-state Moore machine over a 3-symbol
    // alphabet, hidden behind a 5-symbol unlock sequence.
    let functional = Fsm::random(8, 3, &mut rng);
    let secret: Vec<usize> = (0..5).map(|_| rng.gen_range(0..3)).collect();
    let obf = ObfuscatedFsm::new(functional, secret.clone());
    println!(
        "device: {}-state functional FSM + {}-state obfuscation chain (alphabet 3)",
        obf.functional().num_states(),
        secret.len()
    );
    println!("designer's secret unlock sequence: {secret:?}");

    // The attack: black-box L*.
    let result = lstar_attack(&obf);
    println!(
        "\nL* learned an exact model with {} membership and {} equivalence queries",
        result.membership_queries, result.lstar.equivalence_queries
    );
    println!(
        "learned DFA: {} states (combined machine has {})",
        result.lstar.dfa.num_states(),
        obf.combined().num_states()
    );

    match &result.unlock_sequence {
        Some(seq) => {
            println!("recovered unlock sequence: {seq:?}");
            // Demonstrate it unlocks: run it, then compare behaviour.
            let mut probe = seq.clone();
            probe.push(0);
            println!(
                "verification: device after unlock behaves functionally on \
                 probe word -> {} (expected {})",
                obf.combined().output(&probe),
                obf.functional().output(&[0])
            );
        }
        None => println!("no unlock sequence recovered (functional machine is degenerate)"),
    }

    println!(
        "\nlesson (Section V-B): the DFA representation L* outputs is improper \
         for the gate-level FSM — and that is precisely why the attack works \
         when the input alphabet is not exponential."
    );
}
