//! Quickstart: simulate a PUF, attack it, and let the adversary-model
//! machinery explain which security claims the result does (not) touch.
//!
//! Run with: `cargo run -p mlam-examples --example quickstart`

use mlam::adversary::AdversaryModel;
use mlam::attack::run_example_attack;
use mlam::learn::dataset::LabeledSet;
use mlam::learn::features::ArbiterPhiFeatures;
use mlam::learn::perceptron::Perceptron;
use mlam::puf::ArbiterPuf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Manufacture a 64-stage Arbiter PUF (additive delay model).
    let puf = ArbiterPuf::sample(64, 0.02, &mut rng);
    println!(
        "device: 64-stage Arbiter PUF, noise sigma {}",
        puf.noise_sigma()
    );

    // 2. Collect CRPs the way a lab would: stable majority-voted reads.
    let crps = mlam::puf::crp::collect_stable(&puf, 8000, 5, 1.0, &mut rng);
    println!(
        "collected {} stable CRPs ({}% responses are 1)",
        crps.len(),
        (crps.ones_fraction() * 100.0).round()
    );

    // 3. Split and attack with the classic Perceptron-over-Φ model.
    let all = LabeledSet::from_pairs(64, crps.to_labeled());
    let (train, test) = all.split(0.75, &mut rng);
    let report = run_example_attack::<ArbiterPuf, _, _>(
        "Perceptron over arbiter Φ features",
        AdversaryModel::uniform_example_attack(),
        &train,
        &test,
        |tr| {
            Perceptron::new(80)
                .train_with(ArbiterPhiFeatures::new(64), tr)
                .model
        },
    );
    println!(
        "attack: {} -> {:.2}% test accuracy from {} CRPs in {:.3}s",
        report.learner,
        report.accuracy * 100.0,
        report.queries,
        report.seconds
    );

    // 4. The paper's discipline: state the setting, and check which
    // claims this result can even speak to.
    println!("attack setting: {}", report.setting);
    let distribution_free_claim = AdversaryModel::distribution_free_claim();
    let verdict = distribution_free_claim.comparability(&report.setting);
    println!(
        "does this refute a distribution-free proper-learning hardness claim? {}",
        if verdict.is_comparable() {
            "yes (settings comparable)".to_string()
        } else {
            format!(
                "no — pitfalls: {}",
                verdict
                    .pitfalls()
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        }
    );
}
