//! XOR Arbiter PUF modeling with three learners in three settings —
//! the Table I story, empirically: logistic regression and CMA-ES on
//! random examples, and the bounds that do (not) constrain them.
//!
//! Run with: `cargo run --release -p mlam-examples --example xor_apuf_attack`

use mlam::bounds::TableOne;
use mlam::learn::cma_es::{fit_xor_delay_model, CmaEsOptions};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::features::ArbiterPhiFeatures;
use mlam::learn::logistic::{LogisticConfig, LogisticRegression};
use mlam::learn::perceptron::Perceptron;
use mlam::puf::XorArbiterPuf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (n, k) = (24usize, 2usize);
    println!("device: {n}-stage, {k}-chain XOR Arbiter PUF (noiseless)\n");

    // The analytic context: all four Table I rows at this point.
    let bounds = TableOne::compute(n, k, 0.05, 0.01);
    println!(
        "Table I at (n={n}, k={k}, eps=0.05, delta=0.01):\n  \
         Perceptron [9] (arbitrary D): {:.2e} CRPs\n  \
         general VC (uniform D):       {:.2e} CRPs\n  \
         LMN Cor.1 (uniform D):        10^{:.0} CRPs\n  \
         LearnPoly Cor.2 (membership): {:.2e} queries\n",
        bounds.perceptron_bound,
        bounds.general_bound,
        bounds.lmn_bound_log10,
        bounds.learnpoly_bound
    );

    let puf = XorArbiterPuf::sample(n, k, 0.0, &mut rng);
    let train = LabeledSet::sample(&puf, 6000, &mut rng);
    let test = LabeledSet::sample(&puf, 3000, &mut rng);

    // 1. Perceptron over Φ — the *wrong* representation for k=2 (a
    // product of two LTFs is not one LTF in Φ space).
    let perc = Perceptron::new(80).train_with(ArbiterPhiFeatures::new(n), &train);
    println!(
        "Perceptron/Φ (proper, single-LTF hypothesis): {:.2}% test accuracy",
        test.accuracy_of(&perc.model) * 100.0
    );

    // 2. Logistic regression over Φ — same representation ceiling.
    let logi = LogisticRegression::new(LogisticConfig::default()).train_phi(&train, &mut rng);
    println!(
        "Logistic/Φ (proper, single-LTF hypothesis):   {:.2}% test accuracy",
        test.accuracy_of(&logi.model) * 100.0
    );

    // 3. CMA-ES over the full k-chain delay model — the representation
    // that matches the device.
    let (model, result) = fit_xor_delay_model(
        &train,
        k,
        CmaEsOptions {
            max_generations: 600,
            target_fitness: 0.02,
            restarts: 3,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "CMA-ES over k-chain delay model:              {:.2}% test accuracy \
         ({} fitness evals)",
        test.accuracy_of(&model) * 100.0,
        result.evaluations
    );
    println!(
        "\nlesson (Section V): same CRPs, same access, same distribution — \
         the hypothesis representation alone separates failure from success."
    );
}
