//! The paper's qualitative claims about the three adversary-model axes,
//! checked *empirically* against the simulators — each test is one
//! "pitfall" made executable.

use mlam::adversary::{AdversaryModel, Pitfall};
use mlam::boolean::{BitVec, BooleanFunction, FnFunction};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::f2poly::learn_anf_adaptive;
use mlam::learn::lmn::{lmn_learn, LmnConfig};
use mlam::learn::oracle::FunctionOracle;
use mlam::learn::perceptron::Perceptron;
use mlam::puf::{BistableRingPuf, BrPufConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Axis 1 (distribution): the same concept can be easy under the
/// uniform distribution and hopeless under an adversarial one for the
/// same sample budget — "random CRPs" must name its distribution.
#[test]
fn distribution_axis_changes_the_verdict() {
    let mut rng = StdRng::seed_from_u64(1);
    // Concept: majority on the first 3 bits (easy under uniform).
    let f = FnFunction::new(16, |x: &BitVec| {
        (x.get(0) as u8 + x.get(1) as u8 + x.get(2) as u8) >= 2
    });
    // Uniform examples: the perceptron nails it.
    let train_u = LabeledSet::sample(&f, 800, &mut rng);
    let test_u = LabeledSet::sample(&f, 2000, &mut rng);
    let acc_uniform = test_u.accuracy_of(&Perceptron::new(60).train(&train_u).model);
    assert!(acc_uniform > 0.95, "{acc_uniform}");

    // Adversarial fixed distribution: all mass on inputs where the
    // first three bits are 1,1,0 or 0,0,1 — the learner sees a
    // constant-looking slice and cannot resolve the majority boundary
    // elsewhere; uniform test accuracy collapses.
    let mut train_a = LabeledSet::new(16);
    for _ in 0..800 {
        let mut x = BitVec::random(16, &mut rng);
        let pattern = rand::Rng::gen_bool(&mut rng, 0.5);
        x.set(0, pattern);
        x.set(1, pattern);
        x.set(2, !pattern);
        let y = f.eval(&x);
        train_a.push(x, y);
    }
    let acc_adversarial = test_u.accuracy_of(&Perceptron::new(60).train(&train_a).model);
    assert!(
        acc_adversarial < acc_uniform - 0.02,
        "adversarial-distribution training must transfer worse: {acc_adversarial} vs {acc_uniform}"
    );
}

/// Axis 2 (access): parity-like structure is information-theoretically
/// painful from random examples for low-degree spectral learners, yet
/// trivial with membership queries (ANF interpolation).
#[test]
fn access_axis_changes_the_verdict() {
    let mut rng = StdRng::seed_from_u64(2);
    let f = FnFunction::new(20, |x: &BitVec| x.get(0) ^ x.get(7) ^ x.get(13) ^ x.get(19));
    // Random examples + low-degree improper learner: chance.
    let train = LabeledSet::sample(&f, 6000, &mut rng);
    let test = LabeledSet::sample(&f, 2000, &mut rng);
    let lmn = lmn_learn(&train, LmnConfig::new(2));
    let acc_examples = test.accuracy_of(&lmn.hypothesis);
    assert!(
        acc_examples < 0.6,
        "degree-2 LMN must fail on a 4-parity: {acc_examples}"
    );
    // Membership queries: exact in poly(n).
    let oracle = FunctionOracle::uniform(&f);
    let out = learn_anf_adaptive(&oracle, 2, 400, &mut rng);
    assert!(out.accepted);
    let acc_membership = test.accuracy_of(&out.hypothesis);
    assert_eq!(acc_membership, 1.0);
    assert!(out.membership_queries < 1000);
}

/// Axis 3 (representation): on the identical BR PUF data, the proper
/// LTF hypothesis is strictly weaker than the improper low-degree one.
#[test]
fn representation_axis_changes_the_verdict() {
    let mut rng = StdRng::seed_from_u64(3);
    let puf = BistableRingPuf::sample(16, BrPufConfig::calibrated(16), &mut rng);
    let train = LabeledSet::sample(&puf, 10_000, &mut rng);
    let test = LabeledSet::sample(&puf, 4000, &mut rng);
    let proper = test.accuracy_of(&Perceptron::new(60).train(&train).model);
    let improper = test.accuracy_of(&lmn_learn(&train, LmnConfig::new(2)).hypothesis);
    assert!(
        improper > proper,
        "improper {improper} must beat proper {proper} on the same data"
    );
}

/// The pitfall detector agrees with the empirical axes: each of the
/// three scenarios above corresponds to an incomparability verdict.
#[test]
fn detector_matches_the_empirics() {
    // [9] vs [17]: representation (and algorithm) mismatch.
    let claim = AdversaryModel::distribution_free_claim();
    let attack = AdversaryModel::uniform_example_attack();
    let verdict = claim.comparability(&attack);
    assert!(verdict
        .pitfalls()
        .iter()
        .any(|p| matches!(p, Pitfall::RepresentationMismatch { .. })));

    // Random-example claim vs membership-query attack: access mismatch.
    let mut weak_claim = AdversaryModel::uniform_example_attack();
    weak_claim.representation = mlam::adversary::RepresentationModel::Improper;
    let strong_attack = AdversaryModel::membership_query_attack();
    assert!(weak_claim
        .comparability(&strong_attack)
        .pitfalls()
        .iter()
        .any(|p| matches!(p, Pitfall::AccessMismatch { .. })));

    // Uniform claim vs biased attack: distribution mismatch.
    let mut biased_attack = AdversaryModel::uniform_example_attack();
    biased_attack.distribution = mlam::adversary::DistributionModel::ProductBiased(0.8);
    assert!(weak_claim
        .comparability(&biased_attack)
        .pitfalls()
        .iter()
        .any(|p| matches!(p, Pitfall::DistributionMismatch { .. })));
}
