//! Smoke runs of every experiment driver at reduced scale: each table
//! of the paper regenerates, renders and exhibits its qualitative
//! shape.

use mlam::experiments::ablations::{run_ablations, AblationParams};
use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
use mlam::experiments::locking::{run_locking, LockingParams};
use mlam::experiments::sequential::{run_sequential, SequentialParams};
use mlam::experiments::{
    run_table1, run_table2, run_table3, Table1Params, Table2Params, Table3Params,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn table1_regenerates_with_correct_shape() {
    let mut rng = StdRng::seed_from_u64(1);
    let result = run_table1(&Table1Params::quick(), &mut rng);
    // Shape: the VC (uniform) bound undercuts the Perceptron
    // (arbitrary-distribution) bound once k >= 2, and the LMN bound
    // dwarfs everything.
    for b in &result.bounds {
        if b.k >= 2 {
            assert!(b.general_bound < b.perceptron_bound);
        }
        assert!(b.lmn_bound_log10 > (b.general_bound.log10()));
    }
    assert!(result.to_table().to_string().contains("Cor.1"));
}

#[test]
fn table2_regenerates_with_plateau() {
    let mut rng = StdRng::seed_from_u64(2);
    let result = run_table2(&Table2Params::quick(), &mut rng);
    // Shape: accuracy is far above chance but bounded away from 100 %,
    // and quadrupling the CRPs moves it only marginally.
    for row in &result.accuracy {
        for &acc in row {
            assert!(acc > 0.55 && acc < 0.985, "{acc}");
        }
    }
    for gain in result.plateau_gains() {
        assert!(gain.abs() < 0.12, "plateau gain {gain}");
    }
}

#[test]
fn table3_regenerates_with_growing_distance() {
    let mut rng = StdRng::seed_from_u64(3);
    let result = run_table3(&Table3Params::quick(), &mut rng);
    let d: Vec<f64> = result.rows.iter().map(|r| r.distance).collect();
    assert!(d[0] > 0.08, "n=16 distance {}", d[0]);
    assert!(d[2] > d[0], "distance must grow with n: {d:?}");
    assert!(result.rows[2].far_from_halfspace);
}

#[test]
fn corollary2_regenerates_exactly() {
    let mut rng = StdRng::seed_from_u64(4);
    let result = run_corollary2(&Corollary2Params::quick(), &mut rng);
    assert!(result.rows.iter().all(|r| r.exact));
}

#[test]
fn locking_comparison_regenerates() {
    let mut rng = StdRng::seed_from_u64(5);
    let result = run_locking(&LockingParams::quick(), &mut rng);
    for r in &result.rows {
        assert_eq!(r.sat_success, 1.0);
        assert!(r.appsat_accuracy > 0.9 && r.pac_accuracy > 0.9);
    }
}

#[test]
fn sequential_sweep_regenerates() {
    let mut rng = StdRng::seed_from_u64(6);
    let result = run_sequential(&SequentialParams::quick(), &mut rng);
    for r in &result.rows {
        assert_eq!(r.exact_model, 1.0);
    }
}

#[test]
fn ablations_regenerate() {
    let mut rng = StdRng::seed_from_u64(7);
    let result = run_ablations(&AblationParams::quick(), &mut rng);
    assert_eq!(result.to_tables().len(), 4);
    // Nonlinearity dial works.
    let first = result.nonlinearity.first().expect("points").1;
    let last = result.nonlinearity.last().expect("points").1;
    assert!(first > last);
}
