//! End-to-end logic-locking pipelines spanning netlist, sat, locking
//! and learn: generate → lock → attack (SAT / AppSAT / PAC / L*).

use mlam::learn::lstar::lstar_learn;
use mlam::locking::appsat::{appsat, AppSatConfig};
use mlam::locking::combinational::lock_xor;
use mlam::locking::pac_attack::{pac_attack, PacAttackConfig};
use mlam::locking::sat_attack::{sat_attack, SatAttackConfig};
use mlam::locking::sequential::{lstar_attack, Fsm, ObfuscatedFsm, SamplingDfaTeacher};
use mlam::netlist::bench_format::{from_bench, to_bench};
use mlam::netlist::generate::{ac0_circuit, c17, comparator, random_circuit, ripple_adder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn sat_attack_defeats_every_generated_benchmark() {
    let mut rng = StdRng::seed_from_u64(1);
    let circuits = vec![
        ("c17", c17()),
        ("adder3", ripple_adder(3)),
        ("cmp4", comparator(4)),
        ("rand", random_circuit(9, 45, 2, &mut rng)),
        ("ac0", ac0_circuit(10, 3, 8, &mut rng)),
    ];
    for (name, oracle) in circuits {
        let key_bits = oracle.num_gates().min(8);
        let locked = lock_xor(&oracle, key_bits, &mut rng);
        let result = sat_attack(&locked, &oracle, SatAttackConfig::default());
        assert!(
            result.key_is_functionally_correct,
            "{name}: SAT attack failed"
        );
        assert!(
            result.iterations <= 1 << key_bits,
            "{name}: {} DIPs for {key_bits} key bits",
            result.iterations
        );
    }
}

#[test]
fn appsat_approximates_what_sat_solves_exactly() {
    let mut rng = StdRng::seed_from_u64(2);
    let oracle = random_circuit(10, 60, 2, &mut rng);
    let locked = lock_xor(&oracle, 10, &mut rng);
    let exact = sat_attack(&locked, &oracle, SatAttackConfig::default());
    let approx = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
    assert!(exact.key_is_functionally_correct);
    assert!(
        approx.estimated_accuracy > 0.9,
        "AppSAT accuracy {}",
        approx.estimated_accuracy
    );
}

#[test]
fn access_hierarchy_shows_in_query_counts() {
    // Membership-query attacks (SAT DIPs) beat random-example attacks
    // (PAC) on oracle interactions — Section IV quantified.
    let mut rng = StdRng::seed_from_u64(3);
    let oracle = random_circuit(8, 40, 2, &mut rng);
    let locked = lock_xor(&oracle, 8, &mut rng);
    let sat = sat_attack(&locked, &oracle, SatAttackConfig::default());
    let pac = pac_attack(&locked, &oracle, PacAttackConfig::default(), &mut rng);
    assert!(sat.key_is_functionally_correct);
    assert!(pac.estimated_accuracy > 0.9);
    assert!(
        sat.iterations as f64 <= pac.examples_used as f64,
        "DIPs {} vs examples {}",
        sat.iterations,
        pac.examples_used
    );
}

#[test]
fn locked_netlists_round_trip_through_bench_format() {
    let mut rng = StdRng::seed_from_u64(4);
    let oracle = c17();
    let locked = lock_xor(&oracle, 4, &mut rng);
    let text = to_bench(locked.netlist());
    let parsed = from_bench(&text).expect("parse locked netlist");
    assert!(locked.netlist().equivalent_exhaustive(&parsed));
}

#[test]
fn sequential_lstar_attack_end_to_end() {
    let mut rng = StdRng::seed_from_u64(5);
    let fsm = Fsm::random(6, 3, &mut rng);
    let seq: Vec<usize> = (0..4).map(|_| rng.gen_range(0..3)).collect();
    let obf = ObfuscatedFsm::new(fsm, seq.clone());
    let result = lstar_attack(&obf);
    assert_eq!(
        result
            .lstar
            .dfa
            .shortest_disagreement(&obf.combined().to_dfa()),
        None,
        "learned model must be exact"
    );
    // Either an unlock word was recovered, or the functional machine is
    // degenerate (constant output, unlocking unobservable).
    if result.unlock_sequence.is_none() {
        assert_eq!(obf.functional().to_dfa().minimized().num_states(), 1);
    }
}

#[test]
fn sampling_teacher_attack_learns_small_obfuscated_fsm() {
    // The weakest realistic sequential attacker: membership = run the
    // chip, equivalence = random sampling (Angluin's conversion).
    let mut rng = StdRng::seed_from_u64(6);
    let fsm = Fsm::new(2, vec![vec![0, 1], vec![1, 0]], vec![false, true]);
    let obf = ObfuscatedFsm::new(fsm, vec![1, 1]);
    let target = obf.combined().to_dfa();
    let mut teacher = SamplingDfaTeacher::new(target.clone(), 800, 16, &mut rng);
    let out = lstar_learn(&mut teacher, 500);
    assert_eq!(out.dfa.shortest_disagreement(&target), None);
}
