//! End-to-end PUF attack pipelines spanning the puf, learn, boolean and
//! core crates: simulate a device → collect CRPs → attack → evaluate.

use mlam::adversary::AdversaryModel;
use mlam::attack::run_example_attack;
use mlam::boolean::testing::{HalfspaceTester, Verdict};
use mlam::boolean::{BitVec, BooleanFunction, LinearThreshold};
use mlam::learn::cma_es::{fit_xor_delay_model, CmaEsOptions};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::features::ArbiterPhiFeatures;
use mlam::learn::lmn::{lmn_learn, LmnConfig};
use mlam::learn::logistic::{LogisticConfig, LogisticRegression};
use mlam::learn::perceptron::Perceptron;
use mlam::puf::crp::{collect_stable, collect_uniform};
use mlam::puf::noise::ResponseNoise;
use mlam::puf::{ArbiterPuf, BistableRingPuf, BrPufConfig, XorArbiterPuf};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn arbiter_puf_falls_to_phi_perceptron() {
    let mut rng = StdRng::seed_from_u64(1);
    let puf = ArbiterPuf::sample(64, 0.0, &mut rng);
    let crps = collect_uniform(&puf, 6000, &mut rng);
    let all = LabeledSet::from_pairs(64, crps.to_labeled());
    let (train, test) = all.split(0.7, &mut rng);
    let out = Perceptron::new(80).train_with(ArbiterPhiFeatures::new(64), &train);
    let acc = test.accuracy_of(&out.model);
    assert!(acc > 0.95, "64-stage arbiter PUF must be modeled: {acc}");
}

#[test]
fn arbiter_puf_falls_to_logistic_regression_under_noise() {
    let mut rng = StdRng::seed_from_u64(2);
    let puf = ResponseNoise::new(ArbiterPuf::sample(48, 0.0, &mut rng), 0.08);
    // Noisy single-shot collection, like a real attack trace.
    let crps = mlam::puf::crp::collect_noisy(&puf, 8000, &mut rng);
    let train = LabeledSet::from_pairs(48, crps.to_labeled());
    let clean_test = LabeledSet::sample(puf.inner(), 3000, &mut rng);
    let out = LogisticRegression::new(LogisticConfig::default()).train_phi(&train, &mut rng);
    let acc = clean_test.accuracy_of(&out.model);
    assert!(acc > 0.88, "LR must tolerate 8 % response noise: {acc}");
}

#[test]
fn two_xor_arbiter_puf_falls_to_cma_es() {
    let mut rng = StdRng::seed_from_u64(3);
    let puf = XorArbiterPuf::sample(16, 2, 0.0, &mut rng);
    let train = LabeledSet::sample(&puf, 3000, &mut rng);
    let test = LabeledSet::sample(&puf, 2000, &mut rng);
    let (model, result) = fit_xor_delay_model(
        &train,
        2,
        CmaEsOptions {
            max_generations: 400,
            target_fitness: 0.02,
            restarts: 3,
            ..Default::default()
        },
        &mut rng,
    );
    let acc = test.accuracy_of(&model);
    assert!(
        acc > 0.85,
        "CMA-ES should model a 16-bit 2-XOR APUF: acc {acc}, fitness {}",
        result.best_fitness
    );
}

#[test]
fn stable_crp_collection_denoises_the_oracle() {
    let mut rng = StdRng::seed_from_u64(4);
    let puf = ArbiterPuf::sample(32, 0.6, &mut rng);
    let stable = collect_stable(&puf, 2000, 9, 1.0, &mut rng);
    let wrong = stable.iter().filter(|(c, r)| puf.eval(c) != *r).count();
    assert!(
        (wrong as f64) < stable.len() as f64 * 0.03,
        "{wrong}/{} stable CRPs disagree with the ideal response",
        stable.len()
    );
    // The stable set trains a better model than a noisy set of equal size.
    let noisy = mlam::puf::crp::collect_noisy(&puf, stable.len(), &mut rng);
    let test = LabeledSet::sample(&puf, 3000, &mut rng);
    let acc_stable = {
        let train = LabeledSet::from_pairs(32, stable.to_labeled());
        let out = Perceptron::new(60).train_with(ArbiterPhiFeatures::new(32), &train);
        test.accuracy_of(&out.model)
    };
    let acc_noisy = {
        let train = LabeledSet::from_pairs(32, noisy.to_labeled());
        let out = Perceptron::new(60).train_with(ArbiterPhiFeatures::new(32), &train);
        test.accuracy_of(&out.model)
    };
    assert!(
        acc_stable >= acc_noisy - 0.02,
        "stable {acc_stable} vs noisy {acc_noisy}"
    );
}

#[test]
fn br_puf_resists_ltf_but_not_improper_low_degree() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 16;
    let puf = BistableRingPuf::sample(n, BrPufConfig::calibrated(n), &mut rng);
    let train = LabeledSet::sample(&puf, 12_000, &mut rng);
    let test = LabeledSet::sample(&puf, 4000, &mut rng);

    // Proper LTF learner plateaus...
    let proper = Perceptron::new(60).train(&train);
    let proper_acc = test.accuracy_of(&proper.model);
    assert!(
        proper_acc < 0.93,
        "LTF must not crack the BR PUF: {proper_acc}"
    );

    // ...the improper degree-2 spectrum does clearly better.
    let improper = lmn_learn(&train, LmnConfig::new(2));
    let improper_acc = test.accuracy_of(&improper.hypothesis);
    assert!(
        improper_acc > proper_acc + 0.03,
        "improper {improper_acc} must beat proper {proper_acc}"
    );
}

#[test]
fn halfspace_tester_separates_ltf_from_br() {
    let mut rng = StdRng::seed_from_u64(6);
    let tester = HalfspaceTester::new(0.1, 0.95);

    let ltf = LinearThreshold::random(24, &mut rng);
    let pos: Vec<(BitVec, bool)> = (0..5000)
        .map(|_| {
            let x = BitVec::random(24, &mut rng);
            let y = ltf.eval(&x);
            (x, y)
        })
        .collect();
    assert_eq!(tester.run(24, &pos, &mut rng).verdict, Verdict::Halfspace);

    let br = BistableRingPuf::sample(24, BrPufConfig::calibrated(32), &mut rng);
    let neg: Vec<(BitVec, bool)> = (0..5000)
        .map(|_| {
            let x = BitVec::random(24, &mut rng);
            let y = br.eval(&x);
            (x, y)
        })
        .collect();
    assert_eq!(
        tester.run(24, &neg, &mut rng).verdict,
        Verdict::FarFromHalfspace
    );
}

#[test]
fn attack_reports_carry_their_settings() {
    let mut rng = StdRng::seed_from_u64(7);
    let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
    let train = LabeledSet::sample(&puf, 3000, &mut rng);
    let test = LabeledSet::sample(&puf, 2000, &mut rng);
    let report = run_example_attack::<ArbiterPuf, _, _>(
        "perceptron/phi",
        AdversaryModel::uniform_example_attack(),
        &train,
        &test,
        |tr| {
            Perceptron::new(60)
                .train_with(ArbiterPhiFeatures::new(32), tr)
                .model
        },
    );
    assert!(report.accuracy > 0.95);
    // A report in the membership-query setting is not comparable.
    let mut other = report.clone();
    other.setting = AdversaryModel::membership_query_attack();
    assert!(!report.comparable_with(&other));
}
